//! Parallel repetition of independent simulation runs.
//!
//! The paper repeats each simulation 200 times over fresh random
//! partitions and reports the max of the maximum loads. [`repeat`] runs a
//! closure for run indices `0..runs` across threads (each run derives its
//! own seed via [`crate::config::SimConfig::for_run`], so results are
//! independent of thread scheduling) and returns results in run order.
//!
//! # Concurrency model
//!
//! Runs are pre-split into **striped disjoint slots**: worker `w` of `W`
//! owns run indices `w, w + W, w + 2W, ...` and writes each result through
//! a `&mut` reference distributed before the threads spawn. No lock is
//! taken anywhere on the hot path, and the borrow checker proves the
//! slots disjoint. A panicking run is caught per-run and re-raised on the
//! coordinating thread with the run index attached, so a failure inside
//! run 173 of 200 says so instead of dying as a context-free worker panic.
//!
//! # Adaptive stopping
//!
//! [`repeat_with_stopping`] grows the number of runs until the 95%
//! confidence interval of a per-run statistic is tight enough (see
//! [`StopRule`]). The stop point is a **pure function of the per-run
//! values in run order** — never of thread scheduling — so adaptive
//! results are bit-identical across `threads = 1` and `threads = 8`.

use crate::config::SimConfig;
use crate::journal::RunJournal;
use crate::metrics::LoadReport;
use crate::rate_engine::run_rate_simulation;
use crate::stats::{RunningStats, Summary};
use crate::Result;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Chooses a worker count: explicit `threads`, or available parallelism.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Renders a caught panic payload as text for re-raising with context.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f` and returns its result together with the elapsed wall-clock
/// seconds.
///
/// Timing lives here (and not at call sites) because wall-clock reads are
/// confined to this module by the repo's determinism lint: results must
/// never depend on time, only observability records may.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // DETERMINISM: the measured seconds are observability metadata
    // (progress display, journal duration fields); `f`'s value is
    // returned untouched and never depends on the clock.
    let started = Instant::now();
    let value = f();
    (value, started.elapsed().as_secs_f64())
}

/// Runs `job(run_index)` for `0..runs`, in parallel, returning results in
/// run order. `threads = 0` uses all available cores.
///
/// # Panics
///
/// If `job` panics for some run, the panic is re-raised on the calling
/// thread as `"simulation run {i} panicked: {message}"` (the lowest such
/// run index wins when several fail, so the report is deterministic).
pub fn repeat<T, F>(runs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let workers = resolve_threads(threads).min(runs);
    if workers <= 1 {
        return (0..runs).map(job).collect();
    }

    let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    // Pre-split the result vector into striped disjoint slot sets: worker
    // `w` owns runs `w, w + workers, ...`. Each `&mut` is handed out
    // before any thread spawns, so no synchronization is needed to write.
    let mut stripes: Vec<Vec<(usize, &mut Option<T>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, slot) in slots.iter_mut().enumerate() {
        if let Some(stripe) = stripes.get_mut(i % workers) {
            stripe.push((i, slot));
        }
    }

    let job = &job;
    let first_panic: Option<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| {
                scope.spawn(move || -> std::result::Result<(), (usize, String)> {
                    for (i, slot) in stripe {
                        match catch_unwind(AssertUnwindSafe(|| job(i))) {
                            Ok(out) => *slot = Some(out),
                            Err(payload) => return Err((i, panic_message(payload.as_ref()))),
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        let mut first: Option<(usize, String)> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err((i, msg))) => {
                    if first.as_ref().is_none_or(|(j, _)| i < *j) {
                        first = Some((i, msg));
                    }
                }
                // The worker body catches job panics; anything else
                // escaping is a harness bug — re-raise it verbatim.
                Err(payload) => resume_unwind(payload),
            }
        }
        first
    });
    if let Some((i, msg)) = first_panic {
        // Re-raise with context. The original panic already printed via the
        // hook inside the worker; a String payload keeps the
        // `should_panic(expected = ...)` substring contract intact.
        resume_unwind(Box::new(format!("simulation run {i} panicked: {msg}")));
    }
    let results: Vec<T> = slots.into_iter().flatten().collect();
    assert_eq!(results.len(), runs, "every surviving run produces a result");
    results
}

/// When to stop repeating a simulation.
///
/// The rule is evaluated over **run-order prefixes** of the per-run
/// statistic: the stop point is the smallest `k >= min_runs` whose prefix
/// `0..k` has a 95% CI half-width at most `ci_target`, capped at
/// `max_runs`. Because the prefix values themselves are independent of
/// thread count (seeds derive from run indices), the stop point is too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Never stop before this many runs (floor for the CI to be meaningful).
    pub min_runs: usize,
    /// Hard ceiling on the number of runs.
    pub max_runs: usize,
    /// Target 95% CI half-width of the per-run statistic's mean.
    /// `<= 0` disables adaptive stopping: exactly `max_runs` execute.
    pub ci_target: f64,
}

impl StopRule {
    /// A fixed-run rule: exactly `runs` repetitions, no early stopping.
    pub fn fixed(runs: usize) -> Self {
        Self {
            min_runs: runs,
            max_runs: runs,
            ci_target: 0.0,
        }
    }

    /// An adaptive rule stopping once the CI half-width reaches
    /// `ci_target`, with hard `[min_runs, max_runs]` limits.
    ///
    /// # Panics
    ///
    /// Panics if `min_runs > max_runs` or `min_runs == 0`.
    pub fn adaptive(min_runs: usize, max_runs: usize, ci_target: f64) -> Self {
        assert!(min_runs > 0, "min_runs must be positive");
        assert!(
            min_runs <= max_runs,
            "min_runs {min_runs} exceeds max_runs {max_runs}"
        );
        Self {
            min_runs,
            max_runs,
            ci_target,
        }
    }

    /// Whether early stopping can ever trigger under this rule.
    pub fn is_adaptive(&self) -> bool {
        self.ci_target > 0.0 && self.min_runs < self.max_runs
    }

    /// The deterministic stop point for a set of per-run values in run
    /// order: the smallest `k` in `[min_runs, len]` whose prefix CI
    /// half-width is at most `ci_target`, or `None` if no prefix
    /// qualifies (or the rule is not adaptive).
    fn stop_point(&self, values: &[f64]) -> Option<usize> {
        if !self.is_adaptive() {
            return None;
        }
        let mut rs = RunningStats::new();
        for (i, &v) in values.iter().enumerate() {
            rs.push(v);
            let k = i + 1;
            if k >= self.min_runs && rs.ci95_half_width() <= self.ci_target {
                return Some(k);
            }
        }
        None
    }

    /// The stop point for a **vector-valued** per-run statistic: the
    /// smallest `k` in `[min_runs, len]` where *every* component's prefix
    /// CI half-width is at most `ci_target`. Like [`StopRule::stop_point`]
    /// this is a pure function of the rows in run order, so sweeps stay
    /// thread-count invariant.
    fn stop_point_multi(&self, rows: &[Vec<f64>]) -> Option<usize> {
        if !self.is_adaptive() {
            return None;
        }
        let width = rows.first().map(Vec::len)?;
        let mut stats: Vec<RunningStats> = (0..width).map(|_| RunningStats::new()).collect();
        for (i, row) in rows.iter().enumerate() {
            debug_assert_eq!(row.len(), width, "ragged metric rows");
            for (s, &v) in stats.iter_mut().zip(row) {
                s.push(v);
            }
            let k = i + 1;
            if k >= self.min_runs && stats.iter().all(|s| s.ci95_half_width() <= self.ci_target) {
                return Some(k);
            }
        }
        None
    }
}

/// Per-component CI95 half-widths over metric rows (one row per run).
fn component_ci_half_widths(rows: &[Vec<f64>]) -> Vec<f64> {
    let width = rows.first().map(Vec::len).unwrap_or(0);
    let mut stats: Vec<RunningStats> = (0..width).map(|_| RunningStats::new()).collect();
    for row in rows {
        for (s, &v) in stats.iter_mut().zip(row) {
            s.push(v);
        }
    }
    stats.iter().map(RunningStats::ci95_half_width).collect()
}

/// Outcome of an adaptive repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome<T> {
    /// Results for runs `0..stop`, in run order.
    pub results: Vec<T>,
    /// The per-run statistic for the kept runs, in run order.
    pub metrics: Vec<f64>,
    /// Whether the CI criterion stopped the loop before `max_runs`.
    pub stopped_early: bool,
    /// CI95 half-width of the kept metrics.
    pub ci_half_width: f64,
}

/// Repeats `job` under a [`StopRule`], extracting a scalar statistic per
/// run with `metric`.
///
/// Runs are computed in batches sized to the worker count, but the stop
/// point is decided purely by prefix-scanning the per-run statistics in
/// run order — overshoot beyond the stop point is computed and discarded,
/// never returned. A fixed rule (or `ci_target <= 0`) executes exactly
/// `max_runs` and keeps them all.
pub fn repeat_with_stopping<T, F, M>(
    rule: &StopRule,
    threads: usize,
    job: F,
    metric: M,
) -> AdaptiveOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    M: Fn(&T) -> f64,
{
    if !rule.is_adaptive() {
        let results = repeat(rule.max_runs, threads, &job);
        let metrics: Vec<f64> = results.iter().map(&metric).collect();
        let mut rs = RunningStats::new();
        rs.extend(metrics.iter().copied());
        return AdaptiveOutcome {
            results,
            metrics,
            stopped_early: false,
            ci_half_width: rs.ci95_half_width(),
        };
    }

    let workers = resolve_threads(threads).min(rule.max_runs).max(1);
    let mut results: Vec<T> = Vec::with_capacity(rule.min_runs);
    let mut metrics: Vec<f64> = Vec::with_capacity(rule.min_runs);
    loop {
        // First batch jumps straight to the CI floor; later batches grow
        // by whole worker widths to keep every core busy. Overshoot past
        // the stop point is discarded below, so batching never changes
        // the returned prefix.
        let lo = results.len();
        let target = if lo == 0 {
            rule.min_runs.min(rule.max_runs)
        } else {
            (lo + workers).min(rule.max_runs)
        };
        let mut batch = repeat(target - lo, threads, |i| job(lo + i));
        metrics.extend(batch.iter().map(&metric));
        results.append(&mut batch);

        if let Some(stop) = rule.stop_point(&metrics) {
            results.truncate(stop);
            metrics.truncate(stop);
            break;
        }
        if results.len() >= rule.max_runs {
            break;
        }
    }
    let mut rs = RunningStats::new();
    rs.extend(metrics.iter().copied());
    AdaptiveOutcome {
        stopped_early: results.len() < rule.max_runs,
        ci_half_width: rs.ci95_half_width(),
        results,
        metrics,
    }
}

/// Outcome of an adaptive repetition with a vector-valued per-run
/// statistic (e.g. one gain per grid point of a sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAdaptiveOutcome<T> {
    /// Results for runs `0..stop`, in run order.
    pub results: Vec<T>,
    /// One metric row per kept run, in run order.
    pub metrics: Vec<Vec<f64>>,
    /// Whether the CI criterion stopped the loop before `max_runs`.
    pub stopped_early: bool,
    /// CI95 half-width of each metric component over the kept runs.
    pub ci_half_widths: Vec<f64>,
}

/// Repeats `job` under a [`StopRule`] with a **vector-valued** per-run
/// statistic: the batch stops at the smallest prefix where *every*
/// component's CI half-width reaches `ci_target`.
///
/// All metric rows must have the same length. Like
/// [`repeat_with_stopping`], the stop point is a pure function of the
/// rows in run order, so results are thread-count invariant.
pub fn repeat_with_stopping_multi<T, F, M>(
    rule: &StopRule,
    threads: usize,
    job: F,
    metric: M,
) -> MultiAdaptiveOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    M: Fn(&T) -> Vec<f64>,
{
    if !rule.is_adaptive() {
        let results = repeat(rule.max_runs, threads, &job);
        let metrics: Vec<Vec<f64>> = results.iter().map(&metric).collect();
        return MultiAdaptiveOutcome {
            ci_half_widths: component_ci_half_widths(&metrics),
            results,
            metrics,
            stopped_early: false,
        };
    }

    let workers = resolve_threads(threads).min(rule.max_runs).max(1);
    let mut results: Vec<T> = Vec::with_capacity(rule.min_runs);
    let mut metrics: Vec<Vec<f64>> = Vec::with_capacity(rule.min_runs);
    loop {
        let lo = results.len();
        let target = if lo == 0 {
            rule.min_runs.min(rule.max_runs)
        } else {
            (lo + workers).min(rule.max_runs)
        };
        let mut batch = repeat(target - lo, threads, |i| job(lo + i));
        metrics.extend(batch.iter().map(&metric));
        results.append(&mut batch);

        if let Some(stop) = rule.stop_point_multi(&metrics) {
            results.truncate(stop);
            metrics.truncate(stop);
            break;
        }
        if results.len() >= rule.max_runs {
            break;
        }
    }
    MultiAdaptiveOutcome {
        stopped_early: results.len() < rule.max_runs,
        ci_half_widths: component_ci_half_widths(&metrics),
        results,
        metrics,
    }
}

/// Aggregate of the attack gain across repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct GainAggregate {
    /// Per-run gains, in run order.
    pub gains: Vec<f64>,
    /// Distribution summary of the gains.
    pub summary: Summary,
}

impl GainAggregate {
    /// Builds the aggregate from per-run reports.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn from_reports(reports: &[LoadReport]) -> Self {
        assert!(!reports.is_empty(), "need at least one report");
        let gains: Vec<f64> = reports.iter().map(|r| r.gain().value()).collect();
        let summary = Summary::of(&gains);
        Self { gains, summary }
    }

    /// The paper's headline statistic: the max over runs of the
    /// (per-run maximum) normalized load.
    pub fn max_gain(&self) -> f64 {
        self.summary.max
    }

    /// Mean gain across runs.
    pub fn mean_gain(&self) -> f64 {
        self.summary.mean
    }
}

/// A repetition batch with its observability record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledRun {
    /// Per-run reports, in run order.
    pub reports: Vec<LoadReport>,
    /// Gain aggregate over the kept runs.
    pub aggregate: GainAggregate,
    /// Structured per-run records plus stopping metadata.
    pub journal: RunJournal,
}

/// Repeats the rate engine under a [`StopRule`], recording one
/// [`crate::journal::RunRecord`] per repetition (run index, derived seed,
/// wall-clock duration, load shape, gain) into a [`RunJournal`].
///
/// # Errors
///
/// Returns the first simulation error encountered, if any.
pub fn repeat_rate_simulation_journaled(
    cfg: &SimConfig,
    rule: &StopRule,
    threads: usize,
) -> Result<JournaledRun> {
    let outcome = repeat_with_stopping(
        rule,
        threads,
        |i| timed(|| run_rate_simulation(&cfg.for_run(i as u64))),
        // Errors contribute a zero gain to the stop statistic; they abort
        // the whole repetition below, so the value never reaches callers.
        |(report, _)| report.as_ref().map_or(0.0, |r| r.gain().value()),
    );
    let mut reports = Vec::with_capacity(outcome.results.len());
    let mut durations = Vec::with_capacity(outcome.results.len());
    for (report, duration) in outcome.results {
        reports.push(report?);
        durations.push(duration);
    }
    let aggregate = GainAggregate::from_reports(&reports);
    let journal = RunJournal::new(
        cfg,
        rule,
        &reports,
        &durations,
        outcome.stopped_early,
        outcome.ci_half_width,
    );
    Ok(JournaledRun {
        reports,
        aggregate,
        journal,
    })
}

/// Convenience: repeats the rate engine `runs` times with derived seeds
/// and aggregates the gains.
///
/// # Errors
///
/// Returns the first simulation error encountered, if any.
pub fn repeat_rate_simulation(
    cfg: &SimConfig,
    runs: usize,
    threads: usize,
) -> Result<(Vec<LoadReport>, GainAggregate)> {
    let out = repeat_rate_simulation_journaled(cfg, &StopRule::fixed(runs), threads)?;
    Ok((out.reports, out.aggregate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind};
    use scp_workload::AccessPattern;

    fn config() -> SimConfig {
        SimConfig {
            nodes: 50,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: 10,
            items: 2000,
            rate: 1e4,
            pattern: AccessPattern::uniform_subset(11, 2000).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 11,
        }
    }

    #[test]
    fn repeat_preserves_run_order() {
        let out = repeat(20, 4, |i| i * 2);
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn repeat_zero_runs_is_empty() {
        let out: Vec<u32> = repeat(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn repeat_single_thread_path() {
        let out = repeat(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn repeat_more_workers_than_runs() {
        let out = repeat(3, 16, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "simulation run 7 panicked: boom at 7")]
    fn repeat_propagates_panics_with_run_index() {
        let _ = repeat(12, 4, |i| {
            if i == 7 {
                panic!("boom at {i}");
            }
            i
        });
    }

    #[test]
    fn repeat_reports_lowest_panicking_run() {
        // Runs 3 and 9 both panic; the re-raised message must
        // deterministically name run 3 regardless of scheduling.
        let caught = std::panic::catch_unwind(|| {
            let _ = repeat(12, 4, |i| {
                if i == 3 || i == 9 {
                    panic!("boom");
                }
                i
            });
        })
        .expect_err("must panic");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("run 3"), "got: {msg}");
    }

    #[test]
    fn parallel_equals_serial() {
        let cfg = config();
        let (serial, _) = repeat_rate_simulation(&cfg, 8, 1).unwrap();
        let (parallel, _) = repeat_rate_simulation(&cfg, 8, 4).unwrap();
        assert_eq!(serial, parallel, "thread scheduling must not leak in");
    }

    #[test]
    fn runs_differ_across_seeds() {
        let (reports, _) = repeat_rate_simulation(&config(), 4, 0).unwrap();
        let distinct: std::collections::HashSet<String> = reports
            .iter()
            .map(|r| format!("{:?}", r.snapshot.loads()))
            .collect();
        assert!(
            distinct.len() > 1,
            "repetitions should see fresh partitions"
        );
    }

    #[test]
    fn aggregate_statistics() {
        let (reports, agg) = repeat_rate_simulation(&config(), 16, 0).unwrap();
        assert_eq!(agg.gains.len(), 16);
        assert!(agg.max_gain() >= agg.mean_gain());
        let manual_max = reports
            .iter()
            .map(|r| r.gain().value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((agg.max_gain() - manual_max).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one report")]
    fn aggregate_rejects_empty() {
        let _ = GainAggregate::from_reports(&[]);
    }

    #[test]
    fn fixed_rule_is_not_adaptive() {
        let rule = StopRule::fixed(10);
        assert!(!rule.is_adaptive());
        assert_eq!(rule.min_runs, 10);
        assert_eq!(rule.max_runs, 10);
    }

    #[test]
    #[should_panic(expected = "min_runs")]
    fn adaptive_rule_rejects_inverted_limits() {
        let _ = StopRule::adaptive(10, 5, 0.1);
    }

    #[test]
    fn stop_point_is_prefix_deterministic() {
        let rule = StopRule::adaptive(3, 100, 0.5);
        // Identical values: CI hits zero as soon as min_runs is reached.
        let flat = vec![1.0; 50];
        assert_eq!(rule.stop_point(&flat), Some(3));
        // Wildly varying values never satisfy a tight CI.
        let noisy: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 0.0 } else { 100.0 })
            .collect();
        let loose = StopRule::adaptive(3, 100, 1e-9);
        assert_eq!(loose.stop_point(&noisy), None);
    }

    #[test]
    fn adaptive_stops_early_on_low_variance() {
        let rule = StopRule::adaptive(4, 64, 0.25);
        let out = repeat_with_stopping(&rule, 2, |i| i as f64 * 0.0 + 1.0, |&v| v);
        assert!(out.stopped_early);
        assert_eq!(out.results.len(), 4, "flat metric stops at min_runs");
        assert!(out.ci_half_width <= 0.25);
    }

    #[test]
    fn adaptive_runs_to_cap_on_high_variance() {
        let rule = StopRule::adaptive(4, 16, 1e-12);
        let out = repeat_with_stopping(&rule, 4, |i| (i % 7) as f64, |&v| v);
        assert!(!out.stopped_early);
        assert_eq!(out.results.len(), 16);
    }

    #[test]
    fn adaptive_is_thread_count_invariant() {
        let cfg = config();
        let rule = StopRule::adaptive(4, 32, 0.05);
        let a = repeat_rate_simulation_journaled(&cfg, &rule, 1).unwrap();
        let b = repeat_rate_simulation_journaled(&cfg, &rule, 8).unwrap();
        assert_eq!(a.reports, b.reports, "stop point depended on threads");
        assert_eq!(a.aggregate, b.aggregate);
        assert_eq!(a.journal.records.len(), b.journal.records.len());
    }

    #[test]
    fn zero_ci_target_degenerates_to_fixed() {
        let cfg = config();
        let adaptive_off = StopRule {
            min_runs: 2,
            max_runs: 12,
            ci_target: 0.0,
        };
        let a = repeat_rate_simulation_journaled(&cfg, &adaptive_off, 0).unwrap();
        let (fixed, _) = repeat_rate_simulation(&cfg, 12, 0).unwrap();
        assert_eq!(a.reports, fixed);
        assert!(!a.journal.stopping.stopped_early);
    }

    #[test]
    fn journal_records_match_reports() {
        let cfg = config();
        let out = repeat_rate_simulation_journaled(&cfg, &StopRule::fixed(6), 0).unwrap();
        assert_eq!(out.journal.records.len(), 6);
        for (i, rec) in out.journal.records.iter().enumerate() {
            assert_eq!(rec.run, i);
            assert_eq!(rec.seed, cfg.for_run(i as u64).seed);
            assert!((rec.gain - out.reports[i].gain().value()).abs() < 1e-12);
            assert!((rec.max_load - out.reports[i].max_load()).abs() < 1e-12);
            assert!(rec.duration_secs >= 0.0);
        }
    }
}
