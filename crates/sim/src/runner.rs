//! Parallel repetition of independent simulation runs.
//!
//! The paper repeats each simulation 200 times over fresh random
//! partitions and reports the max of the maximum loads. [`repeat`] runs a
//! closure for run indices `0..runs` across threads (each run derives its
//! own seed via [`crate::config::SimConfig::for_run`], so results are
//! independent of thread scheduling) and returns results in run order.

use crate::config::SimConfig;
use crate::metrics::LoadReport;
use crate::rate_engine::run_rate_simulation;
use crate::stats::Summary;
use crate::Result;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Chooses a worker count: explicit `threads`, or available parallelism.
fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `job(run_index)` for `0..runs`, in parallel, returning results in
/// run order. `threads = 0` uses all available cores.
pub fn repeat<T, F>(runs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let workers = resolve_threads(threads).min(runs);
    if workers <= 1 {
        return (0..runs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..runs).map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= runs {
                    break;
                }
                let out = job(i);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("simulation worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every run produces a result"))
        .collect()
}

/// Aggregate of the attack gain across repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct GainAggregate {
    /// Per-run gains, in run order.
    pub gains: Vec<f64>,
    /// Distribution summary of the gains.
    pub summary: Summary,
}

impl GainAggregate {
    /// Builds the aggregate from per-run reports.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn from_reports(reports: &[LoadReport]) -> Self {
        assert!(!reports.is_empty(), "need at least one report");
        let gains: Vec<f64> = reports.iter().map(|r| r.gain().value()).collect();
        let summary = Summary::of(&gains);
        Self { gains, summary }
    }

    /// The paper's headline statistic: the max over runs of the
    /// (per-run maximum) normalized load.
    pub fn max_gain(&self) -> f64 {
        self.summary.max
    }

    /// Mean gain across runs.
    pub fn mean_gain(&self) -> f64 {
        self.summary.mean
    }
}

/// Convenience: repeats the rate engine `runs` times with derived seeds
/// and aggregates the gains.
///
/// # Errors
///
/// Returns the first simulation error encountered, if any.
pub fn repeat_rate_simulation(
    cfg: &SimConfig,
    runs: usize,
    threads: usize,
) -> Result<(Vec<LoadReport>, GainAggregate)> {
    let results = repeat(runs, threads, |i| {
        run_rate_simulation(&cfg.for_run(i as u64))
    });
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        reports.push(r?);
    }
    let agg = GainAggregate::from_reports(&reports);
    Ok((reports, agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheKind, PartitionerKind, SelectorKind};
    use scp_workload::AccessPattern;

    fn config() -> SimConfig {
        SimConfig {
            nodes: 50,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            cache_capacity: 10,
            items: 2000,
            rate: 1e4,
            pattern: AccessPattern::uniform_subset(11, 2000).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 11,
        }
    }

    #[test]
    fn repeat_preserves_run_order() {
        let out = repeat(20, 4, |i| i * 2);
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn repeat_zero_runs_is_empty() {
        let out: Vec<u32> = repeat(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn repeat_single_thread_path() {
        let out = repeat(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn parallel_equals_serial() {
        let cfg = config();
        let (serial, _) = repeat_rate_simulation(&cfg, 8, 1).unwrap();
        let (parallel, _) = repeat_rate_simulation(&cfg, 8, 4).unwrap();
        assert_eq!(serial, parallel, "thread scheduling must not leak in");
    }

    #[test]
    fn runs_differ_across_seeds() {
        let (reports, _) = repeat_rate_simulation(&config(), 4, 0).unwrap();
        let distinct: std::collections::HashSet<String> = reports
            .iter()
            .map(|r| format!("{:?}", r.snapshot.loads()))
            .collect();
        assert!(distinct.len() > 1, "repetitions should see fresh partitions");
    }

    #[test]
    fn aggregate_statistics() {
        let (reports, agg) = repeat_rate_simulation(&config(), 16, 0).unwrap();
        assert_eq!(agg.gains.len(), 16);
        assert!(agg.max_gain() >= agg.mean_gain());
        let manual_max = reports
            .iter()
            .map(|r| r.gain().value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((agg.max_gain() - manual_max).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one report")]
    fn aggregate_rejects_empty() {
        let _ = GainAggregate::from_reports(&[]);
    }
}
