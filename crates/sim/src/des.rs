//! Discrete-event simulation: latency and saturation under attack.
//!
//! The paper closes Section III with a capacity argument: if every node's
//! sustainable rate `r_i` exceeds the max-load bound, the adversary cannot
//! saturate any node. This engine makes that concrete: Poisson client
//! arrivals at rate `R`, a front-end cache, and one exponential-service
//! queue per back-end node (an M/M/1 farm). Overloaded nodes show up as
//! diverging queues and latencies instead of a dry inequality.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::LoadReport;
use crate::stats::{quantile, RunningStats};
use crate::Result;
use scp_cluster::{Cluster, KeyId, NodeId};
use scp_workload::permute::KeyMapping;
use scp_workload::rng::{mix, next_exponential, Xoshiro256StarStar};
use scp_workload::stream::QueryStream;
use scp_workload::temporal::PhasedPattern;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of a discrete-event run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesConfig {
    /// The system + workload being simulated.
    pub sim: SimConfig,
    /// Simulated wall-clock duration in seconds (arrivals stop after
    /// this; in-flight work is drained).
    pub duration: f64,
    /// Per-node service rate `r_i` in queries/second (uniform).
    pub service_rate: f64,
}

impl DesConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid embedded sim config, non-positive
    /// duration or service rate.
    pub fn validate(&self) -> Result<()> {
        self.sim.validate()?;
        if !self.duration.is_finite() || self.duration <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "duration",
                reason: format!("must be finite and positive, got {}", self.duration),
            });
        }
        if !self.service_rate.is_finite() || self.service_rate <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "service_rate",
                reason: format!("must be finite and positive, got {}", self.service_rate),
            });
        }
        Ok(())
    }
}

/// What happens to a node at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The node crashes: its queued work is lost and routing skips it.
    Fail,
    /// The node comes back empty and starts serving again.
    Recover,
}

/// A scheduled node failure or recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEvent {
    /// Simulated time in seconds.
    pub at: f64,
    /// The affected node.
    pub node: NodeId,
    /// Crash or recovery.
    pub action: FailAction,
}

/// Latency/saturation outcome of a discrete-event run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// Queries completed by back-end nodes.
    pub completed: u64,
    /// Queries served by the front-end cache (zero sojourn time).
    pub cache_hits: u64,
    /// Queries lost in node crashes (queued work of failed nodes).
    pub unfinished: u64,
    /// Mean back-end sojourn time (queueing + service) in seconds.
    pub mean_latency: f64,
    /// Median sojourn time.
    pub p50_latency: f64,
    /// 95th-percentile sojourn time.
    pub p95_latency: f64,
    /// 99th-percentile sojourn time.
    pub p99_latency: f64,
    /// Largest sojourn time observed.
    pub max_latency: f64,
    /// Largest queue depth observed on any node.
    pub max_queue_depth: usize,
    /// Highest per-node utilization (busy time / duration).
    pub max_utilization: f64,
    /// Back-end loads (completed queries per node) as a report.
    pub load: LoadReport,
}

impl DesReport {
    /// Whether some node was effectively saturated (utilization ~1 and a
    /// deep queue).
    pub fn is_saturated(&self) -> bool {
        self.max_utilization > 0.95 && self.max_queue_depth > 32
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival,
    /// Departure at a node, tagged with the node's crash epoch so
    /// departures scheduled before a crash are dropped as stale.
    Departure {
        node: u32,
        epoch: u32,
    },
    Admin(u32),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| {
            // Admin first, then departures, then arrivals at ties.
            fn order(kind: EventKind) -> (u8, u32) {
                match kind {
                    EventKind::Admin(i) => (0, i),
                    EventKind::Departure { node, .. } => (1, node),
                    EventKind::Arrival => (2, 0),
                }
            }
            order(self.kind).cmp(&order(other.kind))
        })
    }
}

/// Runs one discrete-event simulation.
///
/// # Errors
///
/// Returns an error on invalid configuration.
pub fn run_des(cfg: &DesConfig) -> Result<DesReport> {
    run_des_with_events(cfg, &[])
}

/// Runs a discrete-event simulation with scheduled node crashes and
/// recoveries.
///
/// A crash drops the node's queued work (reported as `unfinished`) and
/// removes it from routing until a matching [`FailAction::Recover`].
///
/// # Errors
///
/// Returns an error on invalid configuration or an event referencing a
/// node outside the cluster.
pub fn run_des_with_events(cfg: &DesConfig, node_events: &[NodeEvent]) -> Result<DesReport> {
    cfg.validate()?;
    for e in node_events {
        if e.node.index() >= cfg.sim.nodes {
            return Err(SimError::InvalidConfig {
                field: "node_events",
                reason: format!("{} outside the {}-node cluster", e.node, cfg.sim.nodes),
            });
        }
        if !e.at.is_finite() || e.at < 0.0 {
            return Err(SimError::InvalidConfig {
                field: "node_events",
                reason: format!("event time {} must be finite and non-negative", e.at),
            });
        }
    }
    let sim = &cfg.sim;
    let mapping = KeyMapping::scattered(sim.items, mix(&[sim.seed, 3]))?;
    let top = (sim.cache_capacity as u64).min(sim.items);
    let ranked: Vec<u64> = (0..top).map(|rank| mapping.apply(rank)).collect();
    // Arrivals sample ranks; keys go through the same mapping as the cache.
    let mut stream = QueryStream::with_mapping(&sim.pattern, mix(&[sim.seed, 4]), mapping)?;
    let mut key_at = move |_t: f64| stream.next_key();
    let (report, _) = run_des_core(cfg, node_events, ranked, &mut key_at)?;
    Ok(report)
}

/// Latency summary of one phase of a timed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseLatency {
    /// Index into the timeline's phases.
    pub phase: usize,
    /// Back-end completions whose departure fell in this phase.
    pub completed: u64,
    /// Mean sojourn time of those completions (0 if none).
    pub mean_latency: f64,
    /// 95th-percentile sojourn time (0 if none).
    pub p95_latency: f64,
}

/// Runs a discrete-event simulation over a [`PhasedPattern`] timeline
/// (e.g. organic traffic → attack ramp → mitigation), with optional node
/// events, returning the aggregate report plus per-phase latency
/// summaries (bucketed by completion time).
///
/// The timeline replaces `cfg.sim.pattern` as the key source; its key
/// space must match `cfg.sim.items`.
///
/// # Errors
///
/// Returns an error on invalid configurations or a key-space mismatch.
pub fn run_des_phased(
    cfg: &DesConfig,
    node_events: &[NodeEvent],
    timeline: &PhasedPattern,
) -> Result<(DesReport, Vec<PhaseLatency>)> {
    if timeline.key_space() != cfg.sim.items {
        return Err(SimError::InvalidConfig {
            field: "timeline",
            reason: format!(
                "timeline key space {} != items {}",
                timeline.key_space(),
                cfg.sim.items
            ),
        });
    }
    let sim = &cfg.sim;
    let mapping = KeyMapping::scattered(sim.items, mix(&[sim.seed, 3]))?;
    let top = (sim.cache_capacity as u64).min(sim.items);
    let ranked: Vec<u64> = (0..top).map(|rank| mapping.apply(rank)).collect();
    let mut sampler = timeline.sampler(mix(&[sim.seed, 4]))?;
    let mut key_at = move |t: f64| mapping.apply(sampler.sample_at(t));
    let (report, samples) = run_des_core(cfg, node_events, ranked, &mut key_at)?;

    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); timeline.phase_count()];
    for &(time, latency) in &samples {
        buckets[timeline.phase_index_at(time)].push(latency);
    }
    let phases = buckets
        .into_iter()
        .enumerate()
        .map(|(phase, lats)| {
            let mut stats = RunningStats::new();
            stats.extend(lats.iter().copied());
            PhaseLatency {
                phase,
                completed: stats.count(),
                mean_latency: stats.mean(),
                p95_latency: if lats.is_empty() {
                    0.0
                } else {
                    quantile(&lats, 0.95)
                },
            }
        })
        .collect();
    Ok((report, phases))
}

fn run_des_core(
    cfg: &DesConfig,
    node_events: &[NodeEvent],
    ranked_keys: Vec<u64>,
    key_at: &mut dyn FnMut(f64) -> u64,
) -> Result<(DesReport, Vec<(f64, f64)>)> {
    let sim = &cfg.sim;
    let n = sim.nodes;

    let mut cache = sim.build_cache(ranked_keys);
    let mut cluster = Cluster::new(sim.build_partitioner()?, sim.build_selector());
    let mut arrival_rng = Xoshiro256StarStar::seed_from_u64(mix(&[sim.seed, 5]));
    let mut service_rng = Xoshiro256StarStar::seed_from_u64(mix(&[sim.seed, 6]));

    let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); n];
    let mut busy_time = vec![0.0f64; n];
    let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    for (i, e) in node_events.iter().enumerate() {
        events.push(Reverse(Event {
            time: e.at,
            kind: EventKind::Admin(u32::try_from(i).unwrap_or(u32::MAX)),
        }));
    }
    let mut lost = 0u64;
    let mut epochs = vec![0u32; n];

    // Seed the first arrival.
    let first = next_exponential(&mut arrival_rng, sim.rate);
    if first <= cfg.duration {
        events.push(Reverse(Event {
            time: first,
            kind: EventKind::Arrival,
        }));
    }

    let mut latencies: Vec<(f64, f64)> = Vec::new();
    let mut cache_hits = 0u64;
    let mut max_queue_depth = 0usize;

    while let Some(Reverse(event)) = events.pop() {
        match event.kind {
            EventKind::Arrival => {
                let key = key_at(event.time);
                // Schedule the next arrival (if within the horizon).
                let next = event.time + next_exponential(&mut arrival_rng, sim.rate);
                if next <= cfg.duration {
                    events.push(Reverse(Event {
                        time: next,
                        kind: EventKind::Arrival,
                    }));
                }
                if cache.request(key).is_hit() {
                    cache_hits += 1;
                    continue;
                }
                let Ok(node) = cluster.route_query(KeyId::new(key)) else {
                    continue; // whole group down: accounted as unserved
                };
                let q = &mut queues[node.index()];
                q.push_back(event.time);
                max_queue_depth = max_queue_depth.max(q.len());
                if q.len() == 1 {
                    let service = next_exponential(&mut service_rng, cfg.service_rate);
                    busy_time[node.index()] += service;
                    events.push(Reverse(Event {
                        time: event.time + service,
                        kind: EventKind::Departure {
                            node: node.value(),
                            epoch: epochs[node.index()],
                        },
                    }));
                }
            }
            EventKind::Admin(idx) => {
                let e = node_events[idx as usize];
                match e.action {
                    FailAction::Fail => {
                        let _ = cluster.fail_node(e.node);
                        // Queued work dies with the node; bumping the
                        // epoch invalidates any in-flight departure.
                        lost += queues[e.node.index()].len() as u64;
                        queues[e.node.index()].clear();
                        epochs[e.node.index()] += 1;
                    }
                    FailAction::Recover => {
                        let _ = cluster.recover_node(e.node);
                    }
                }
            }
            EventKind::Departure { node, epoch } => {
                if epoch != epochs[node as usize] {
                    continue; // scheduled before a crash: stale
                }
                let q = &mut queues[node as usize];
                let admitted = q.pop_front().expect("departure from empty queue");
                latencies.push((event.time, event.time - admitted));
                if !q.is_empty() {
                    let service = next_exponential(&mut service_rng, cfg.service_rate);
                    busy_time[node as usize] += service;
                    events.push(Reverse(Event {
                        time: event.time + service,
                        kind: EventKind::Departure { node, epoch },
                    }));
                }
            }
        }
    }

    let lat_values: Vec<f64> = latencies.iter().map(|&(_, l)| l).collect();
    let mut lat_stats = RunningStats::new();
    lat_stats.extend(lat_values.iter().copied());
    let (p50, p95, p99) = if lat_values.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            quantile(&lat_values, 0.5),
            quantile(&lat_values, 0.95),
            quantile(&lat_values, 0.99),
        )
    };
    let max_utilization = busy_time
        .iter()
        .map(|&b| b / cfg.duration)
        .fold(0.0, f64::max);

    let completed = latencies.len() as u64;
    // Node loads count queries at routing time, so they already include
    // work later lost in crashes: completed + lost = snapshot total. The
    // `unserved` channel carries only routing failures (whole group down);
    // crash losses are reported separately as `unfinished`.
    let snapshot = cluster.snapshot();
    let load = LoadReport {
        offered: cache_hits as f64 + snapshot.total() + cluster.unserved(),
        snapshot,
        cache_load: cache_hits as f64,
        unserved: cluster.unserved(),
        cache_stats: Some(*cache.stats()),
    };

    Ok((
        DesReport {
            completed,
            cache_hits,
            unfinished: lost,
            mean_latency: lat_stats.mean(),
            p50_latency: p50,
            p95_latency: p95,
            p99_latency: p99,
            max_latency: lat_stats.max(),
            max_queue_depth,
            max_utilization,
            load,
        },
        latencies,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind};
    use scp_workload::AccessPattern;

    fn des_config(rate: f64, service_rate: f64, pattern: AccessPattern, c: usize) -> DesConfig {
        DesConfig {
            sim: SimConfig {
                nodes: 20,
                replication: 3,
                cache_kind: CacheKind::Perfect,
                admission: AdmissionKind::Oracle,
                cache_capacity: c,
                items: 1000,
                rate,
                pattern,
                partitioner: PartitionerKind::Hash,
                selector: SelectorKind::LeastLoaded,
                seed: 5,
            },
            duration: 20.0,
            service_rate,
        }
    }

    #[test]
    fn validates_inputs() {
        let mut cfg = des_config(100.0, 50.0, AccessPattern::uniform(1000).unwrap(), 0);
        cfg.duration = 0.0;
        assert!(run_des(&cfg).is_err());
        let mut cfg = des_config(100.0, 50.0, AccessPattern::uniform(1000).unwrap(), 0);
        cfg.service_rate = -1.0;
        assert!(run_des(&cfg).is_err());
    }

    #[test]
    fn underloaded_farm_has_low_latency_and_no_saturation() {
        // Offered 100 qps over 20 nodes = 5 qps/node; service 100 qps/node.
        let cfg = des_config(100.0, 100.0, AccessPattern::uniform(1000).unwrap(), 0);
        let r = run_des(&cfg).unwrap();
        assert!(r.completed > 1000, "should complete ~2000 queries");
        assert!(!r.is_saturated());
        assert!(r.max_utilization < 0.5, "rho ~= 0.05 expected");
        // M/M/1 at rho ~.05: sojourn ~ 1/(mu - lambda) ~ 10.5ms.
        assert!(r.mean_latency < 0.05, "latency {} too high", r.mean_latency);
        assert!(r.p99_latency >= r.p50_latency);
    }

    #[test]
    fn adversarial_hotspot_saturates_a_node() {
        // x = c+1 = 11 keys over 1000-key space; the single uncached key
        // carries ~R/11 = 91 qps into one node with service 40 qps.
        let pattern = AccessPattern::uniform_subset(11, 1000).unwrap();
        let cfg = des_config(1000.0, 40.0, pattern, 10);
        let r = run_des(&cfg).unwrap();
        assert!(r.is_saturated(), "hot node must saturate: {r:?}");
        assert!(r.max_utilization > 0.95);
        assert!(r.max_queue_depth > 100);
    }

    #[test]
    fn provisioned_cache_prevents_saturation_under_same_attack() {
        // Same attack but everything the adversary queries is cached.
        let pattern = AccessPattern::uniform_subset(11, 1000).unwrap();
        let cfg = des_config(1000.0, 40.0, pattern, 11);
        let r = run_des(&cfg).unwrap();
        assert_eq!(r.completed, 0, "all queries hit the cache");
        assert!(!r.is_saturated());
        assert!(r.cache_hits > 10_000);
    }

    #[test]
    fn conservation_of_queries() {
        let cfg = des_config(200.0, 100.0, AccessPattern::uniform(1000).unwrap(), 50);
        let r = run_des(&cfg).unwrap();
        assert!(r.load.is_conserved(1e-9));
        assert_eq!(
            r.load.offered as u64,
            r.cache_hits + r.completed + r.load.unserved as u64
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let cfg = des_config(150.0, 80.0, AccessPattern::zipf(1.01, 1000).unwrap(), 20);
        let a = run_des(&cfg).unwrap();
        let b = run_des(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scheduled_crash_loses_queued_work_and_shifts_load() {
        // Uniform load; crash half the nodes mid-run.
        let cfg = des_config(800.0, 100.0, AccessPattern::uniform(1000).unwrap(), 0);
        let events: Vec<NodeEvent> = (0..10u32)
            .map(|i| NodeEvent {
                at: 10.0,
                node: NodeId::new(i),
                action: FailAction::Fail,
            })
            .collect();
        let with_failures = run_des_with_events(&cfg, &events).unwrap();
        let baseline = run_des(&cfg).unwrap();
        // Dead nodes stop completing; survivors pick up the slack.
        assert!(with_failures.load.is_conserved(1e-9));
        assert!(with_failures.unfinished > 0, "queued work should be lost");
        assert!(
            (with_failures.completed + with_failures.unfinished) as f64
                - with_failures.load.snapshot.total()
                < 1e-9,
            "completed + lost must equal routed work"
        );
        assert!(
            with_failures.max_utilization > baseline.max_utilization,
            "survivors should run hotter: {} vs {}",
            with_failures.max_utilization,
            baseline.max_utilization
        );
        assert!(
            with_failures.p95_latency >= baseline.p95_latency,
            "half the farm gone must not improve latency"
        );
    }

    #[test]
    fn crash_and_recovery_round_trip() {
        let cfg = des_config(400.0, 100.0, AccessPattern::uniform(1000).unwrap(), 0);
        let events = vec![
            NodeEvent {
                at: 5.0,
                node: NodeId::new(3),
                action: FailAction::Fail,
            },
            NodeEvent {
                at: 10.0,
                node: NodeId::new(3),
                action: FailAction::Recover,
            },
        ];
        let r = run_des_with_events(&cfg, &events).unwrap();
        assert!(r.load.is_conserved(1e-9));
        // Node 3 served before the crash and after recovery.
        assert!(r.load.snapshot.loads()[3] > 0.0);
        let baseline = run_des(&cfg).unwrap();
        assert!(
            r.load.snapshot.loads()[3] < baseline.load.snapshot.loads()[3],
            "a 5s outage must cost node 3 some completions"
        );
    }

    #[test]
    fn node_event_validation() {
        let cfg = des_config(100.0, 100.0, AccessPattern::uniform(1000).unwrap(), 0);
        let bad_node = [NodeEvent {
            at: 1.0,
            node: NodeId::new(99),
            action: FailAction::Fail,
        }];
        assert!(run_des_with_events(&cfg, &bad_node).is_err());
        let bad_time = [NodeEvent {
            at: -1.0,
            node: NodeId::new(0),
            action: FailAction::Fail,
        }];
        assert!(run_des_with_events(&cfg, &bad_time).is_err());
    }

    #[test]
    fn failure_run_is_deterministic() {
        let cfg = des_config(300.0, 80.0, AccessPattern::zipf(1.01, 1000).unwrap(), 10);
        let events = vec![NodeEvent {
            at: 7.0,
            node: NodeId::new(1),
            action: FailAction::Fail,
        }];
        let a = run_des_with_events(&cfg, &events).unwrap();
        let b = run_des_with_events(&cfg, &events).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn phased_timeline_shows_attack_spike_and_recovery() {
        use scp_workload::temporal::{Phase, PhasedPattern};
        // Organic (light) -> attack hotspot -> organic again. Service rate
        // gives comfortable head-room for organic traffic but not for the
        // concentrated attack phase.
        let organic = AccessPattern::uniform(1000).unwrap();
        // One uncached key (x = c+1) carrying R/6 = 100 qps against a
        // 120 qps/node service: rho ~0.83 during the attack phase vs
        // ~0.25 organically.
        let attack = AccessPattern::uniform_subset(6, 1000).unwrap();
        let timeline = PhasedPattern::new(vec![
            Phase {
                duration: 10.0,
                pattern: organic.clone(),
            },
            Phase {
                duration: 10.0,
                pattern: attack,
            },
            Phase {
                duration: 10.0,
                pattern: organic.clone(),
            },
        ])
        .unwrap();
        let cfg = des_config(600.0, 120.0, organic, 5);
        let mut des = cfg;
        des.duration = 30.0;
        let (report, phases) = run_des_phased(&des, &[], &timeline).unwrap();
        assert_eq!(phases.len(), 3);
        assert!(report.completed > 0);
        // The attack phase must have visibly worse latency than the first.
        assert!(
            phases[1].mean_latency > phases[0].mean_latency * 2.0,
            "attack phase {:?} vs organic {:?}",
            phases[1],
            phases[0]
        );
        // After the attack stops, the tail drains and latency recovers
        // (phase 2 better than phase 1).
        assert!(phases[2].mean_latency < phases[1].mean_latency);
        for p in &phases {
            assert!(p.completed > 0, "every phase completes work: {p:?}");
        }
    }

    #[test]
    fn phased_rejects_mismatched_key_space() {
        use scp_workload::temporal::{Phase, PhasedPattern};
        let timeline = PhasedPattern::new(vec![Phase {
            duration: 1.0,
            pattern: AccessPattern::uniform(99).unwrap(),
        }])
        .unwrap();
        let cfg = des_config(100.0, 100.0, AccessPattern::uniform(1000).unwrap(), 0);
        assert!(run_des_phased(&cfg, &[], &timeline).is_err());
    }

    #[test]
    fn phased_run_is_deterministic() {
        use scp_workload::temporal::{Phase, PhasedPattern};
        let timeline = PhasedPattern::new(vec![
            Phase {
                duration: 5.0,
                pattern: AccessPattern::zipf(1.01, 1000).unwrap(),
            },
            Phase {
                duration: 5.0,
                pattern: AccessPattern::uniform_subset(21, 1000).unwrap(),
            },
        ])
        .unwrap();
        let mut cfg = des_config(200.0, 80.0, AccessPattern::uniform(1000).unwrap(), 20);
        cfg.duration = 10.0;
        let a = run_des_phased(&cfg, &[], &timeline).unwrap();
        let b = run_des_phased(&cfg, &[], &timeline).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn latency_grows_with_utilization() {
        let lo = run_des(&des_config(
            100.0,
            100.0,
            AccessPattern::uniform(1000).unwrap(),
            0,
        ))
        .unwrap();
        let hi = run_des(&des_config(
            1200.0,
            100.0,
            AccessPattern::uniform(1000).unwrap(),
            0,
        ))
        .unwrap();
        assert!(
            hi.mean_latency > lo.mean_latency,
            "rho 0.6 ({}) should beat rho 0.05 ({})",
            hi.mean_latency,
            lo.mean_latency
        );
    }
}
