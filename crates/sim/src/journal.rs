//! Structured per-run observability records.
//!
//! Repeated simulations are opaque when all that survives is an aggregate:
//! a theory-vs-simulation gap in a figure cannot be attributed to a single
//! outlier partition, a skewed subset of runs, or a systematic offset. A
//! [`RunJournal`] keeps one [`RunRecord`] per repetition — run index,
//! derived seed, wall-clock duration and the load shape of that run — so
//! any aggregate can be decomposed after the fact and any individual run
//! replayed bit-for-bit from its recorded seed.
//!
//! Journals serialize to JSON (self-describing, with the generating
//! configuration as a header) and to CSV (one row per run, for plotting).

use crate::config::SimConfig;
use crate::metrics::LoadReport;
use crate::runner::StopRule;
use crate::stats::Summary;
use scp_json::Json;

/// The observability record of a single repetition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRecord {
    /// Repetition index within the batch.
    pub run: usize,
    /// The derived seed the run actually used
    /// ([`SimConfig::for_run`] of the batch seed), for exact replay.
    pub seed: u64,
    /// Wall-clock duration of the run in seconds.
    pub duration_secs: f64,
    /// Load of the most loaded node, in the run's native unit.
    pub max_load: f64,
    /// Mean per-node back-end load.
    pub mean_load: f64,
    /// Fraction of offered load absorbed by the front-end cache.
    pub cache_fraction: f64,
    /// The run's attack gain (normalized max load).
    pub gain: f64,
}

impl RunRecord {
    /// Builds the record for repetition `run` from its report.
    pub fn from_report(
        cfg: &SimConfig,
        run: usize,
        report: &LoadReport,
        duration_secs: f64,
    ) -> Self {
        let nodes = report.snapshot.node_count().max(1) as f64;
        Self {
            run,
            seed: cfg.for_run(run as u64).seed,
            duration_secs,
            max_load: report.max_load(),
            mean_load: report.snapshot.total() / nodes,
            cache_fraction: report.cache_fraction(),
            gain: report.gain().value(),
        }
    }

    /// The record as a JSON object (seed as a decimal string, so full
    /// 64-bit values survive the `f64` number model).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("run", Json::Num(self.run as f64)),
            ("seed", Json::Str(self.seed.to_string())),
            ("duration_secs", Json::Num(self.duration_secs)),
            ("max_load", Json::Num(self.max_load)),
            ("mean_load", Json::Num(self.mean_load)),
            ("cache_fraction", Json::Num(self.cache_fraction)),
            ("gain", Json::Num(self.gain)),
        ])
    }
}

/// How and why a repetition batch stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopInfo {
    /// The rule the batch ran under.
    pub rule: StopRule,
    /// Whether the CI criterion fired before `max_runs`.
    pub stopped_early: bool,
    /// CI95 half-width of the per-run gains actually kept.
    pub ci_half_width: f64,
}

impl StopInfo {
    /// The stopping metadata as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("min_runs", Json::Num(self.rule.min_runs as f64)),
            ("max_runs", Json::Num(self.rule.max_runs as f64)),
            ("ci_target", Json::Num(self.rule.ci_target)),
            ("stopped_early", Json::Bool(self.stopped_early)),
            ("ci_half_width", Json::Num(self.ci_half_width)),
        ])
    }
}

/// Column order of [`RunJournal::to_csv`], matching [`RunRecord`] fields.
pub const CSV_HEADER: &str = "run,seed,duration_secs,max_load,mean_load,cache_fraction,gain";

/// The observability layer of one repetition batch: a configuration
/// header, one [`RunRecord`] per repetition, the gain summary and the
/// stopping decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RunJournal {
    /// JSON description of the generating configuration.
    pub config: Json,
    /// One record per kept repetition, in run order.
    pub records: Vec<RunRecord>,
    /// Distribution summary of the per-run gains.
    pub gain_summary: Summary,
    /// The stopping decision.
    pub stopping: StopInfo,
}

impl RunJournal {
    /// Assembles the journal for a batch of reports.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty or `durations` has a different length.
    pub fn new(
        cfg: &SimConfig,
        rule: &StopRule,
        reports: &[LoadReport],
        durations: &[f64],
        stopped_early: bool,
        ci_half_width: f64,
    ) -> Self {
        assert!(!reports.is_empty(), "journal needs at least one run");
        assert_eq!(
            reports.len(),
            durations.len(),
            "one duration per report required"
        );
        let records: Vec<RunRecord> = reports
            .iter()
            .zip(durations)
            .enumerate()
            .map(|(run, (report, &d))| RunRecord::from_report(cfg, run, report, d))
            .collect();
        let gains: Vec<f64> = records.iter().map(|r| r.gain).collect();
        Self {
            config: cfg.describe_json(),
            records,
            gain_summary: Summary::of(&gains),
            stopping: StopInfo {
                rule: *rule,
                stopped_early,
                ci_half_width,
            },
        }
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The journal as one self-describing JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("config", self.config.clone()),
            ("stopping", self.stopping.to_json()),
            ("gain_summary", self.gain_summary.to_json()),
            (
                "runs",
                Json::arr(self.records.iter().map(RunRecord::to_json)),
            ),
        ])
    }

    /// The per-run records as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                r.run, r.seed, r.duration_secs, r.max_load, r.mean_load, r.cache_fraction, r.gain
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind};
    use crate::runner::repeat_rate_simulation_journaled;
    use scp_workload::AccessPattern;

    fn config() -> SimConfig {
        SimConfig {
            nodes: 40,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: 8,
            items: 1000,
            rate: 1e4,
            pattern: AccessPattern::uniform_subset(9, 1000).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 0xFEED_FACE_CAFE_F00D,
        }
    }

    fn journal() -> RunJournal {
        repeat_rate_simulation_journaled(&config(), &StopRule::fixed(5), 0)
            .unwrap()
            .journal
    }

    #[test]
    fn one_record_per_repetition() {
        let j = journal();
        assert_eq!(j.len(), 5);
        assert!(!j.is_empty());
        for (i, r) in j.records.iter().enumerate() {
            assert_eq!(r.run, i);
        }
    }

    #[test]
    fn seeds_allow_exact_replay() {
        let cfg = config();
        let j = journal();
        for rec in &j.records {
            let mut replay_cfg = cfg.clone();
            replay_cfg.seed = rec.seed;
            let report = crate::rate_engine::run_rate_simulation(&replay_cfg).unwrap();
            assert!(
                (report.gain().value() - rec.gain).abs() < 1e-12,
                "run {} not replayable from its journal seed",
                rec.run
            );
        }
    }

    #[test]
    fn json_is_parseable_and_full_fidelity() {
        let j = journal();
        let text = j.to_json().to_pretty_string();
        let back = Json::parse(&text).unwrap();
        let runs = back.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs.len(), 5);
        // Full 64-bit seeds survive via the decimal-string encoding.
        let seed0: u64 = runs[0]
            .get("seed")
            .and_then(Json::as_str)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(seed0, j.records[0].seed);
        // Header and stopping metadata present.
        assert_eq!(
            back.get("config")
                .and_then(|c| c.get("nodes"))
                .and_then(Json::as_u64),
            Some(40)
        );
        assert_eq!(
            back.get("stopping")
                .and_then(|s| s.get("stopped_early"))
                .and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            back.get("gain_summary")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(5)
        );
    }

    #[test]
    fn csv_has_header_plus_one_row_per_run() {
        let j = journal();
        let csv = j.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], CSV_HEADER);
        for (i, line) in lines[1..].iter().enumerate() {
            assert!(line.starts_with(&format!("{i},")), "row {i}: {line}");
            assert_eq!(line.split(',').count(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn journal_rejects_empty_batch() {
        let _ = RunJournal::new(&config(), &StopRule::fixed(1), &[], &[], false, 0.0);
    }
}
