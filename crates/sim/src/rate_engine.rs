//! Exact rate propagation (the paper's simulation methodology).
//!
//! Instead of sampling individual queries, the engine attributes each
//! rank's exact query rate `R · p_rank` to either the front-end cache (the
//! `c` most popular ranks — perfect caching) or the back-end node(s)
//! chosen by the partitioner and replica selector. The measured maximum
//! load is then a function of the random partition only, matching the
//! paper's "x different keys are queried at the same rate, and the load of
//! the most loaded nodes is recorded" (Section IV).

use crate::config::{AdmissionKind, CacheKind, SimConfig};
use crate::error::SimError;
use crate::metrics::LoadReport;
use crate::Result;
use scp_cluster::{Cluster, KeyId};
use scp_workload::permute::KeyMapping;
use scp_workload::rng::mix;

/// Runs one rate-propagation simulation.
///
/// Under [`AdmissionKind::Oracle`] this requires [`CacheKind::Perfect`]
/// or [`CacheKind::None`]: steady-state rates have no notion of recency,
/// so replacement policies need the [`crate::query_engine`] instead.
/// Under [`AdmissionKind::Online`] the effective cache (W-TinyLFU for a
/// perfect-oracle config) is instead *measured*: a seeded rank stream
/// drives it to empirical per-rank hit probabilities, which then scale
/// each rank's propagated rate.
///
/// # Errors
///
/// Returns an error on invalid configs or unsupported cache kinds.
pub fn run_rate_simulation(cfg: &SimConfig) -> Result<LoadReport> {
    cfg.validate()?;
    if cfg.admission == AdmissionKind::Online && cfg.effective_cache_kind() != CacheKind::None {
        let mut cluster = Cluster::new(cfg.build_partitioner()?, cfg.build_selector());
        return run_rate_simulation_online(cfg, &mut cluster);
    }
    let cache_capacity = match cfg.cache_kind {
        CacheKind::Perfect => cfg.cache_capacity,
        CacheKind::None => 0,
        other => {
            return Err(SimError::InvalidConfig {
                field: "cache_kind",
                reason: format!(
                    "rate engine models steady state and supports only \
                     perfect/none caching, got {}; use the query engine",
                    other.name()
                ),
            })
        }
    };

    let mut cluster = Cluster::new(cfg.build_partitioner()?, cfg.build_selector());
    run_rate_simulation_on(cfg, &mut cluster, cache_capacity)
}

/// Rate propagation against a caller-prepared cluster (e.g. with failed
/// nodes or attached capacities). The cluster must match the config's
/// node count; its existing loads are reset first.
///
/// # Errors
///
/// Returns an error on invalid or mismatched configs.
pub fn run_rate_simulation_on(
    cfg: &SimConfig,
    cluster: &mut Cluster,
    cache_capacity: usize,
) -> Result<LoadReport> {
    let mapping = KeyMapping::scattered(cfg.items, mix(&[cfg.seed, 3]))?;
    run_rate_simulation_with(cfg, cluster, cache_capacity, &mapping)
}

/// Rate propagation with an explicit rank-to-key mapping.
///
/// The default engines scatter ranks over the key space (the adversary's
/// key choice is arbitrary and the partition random, so the mapping is
/// irrelevant — except for the correlated [`RangePartitioner`], where an
/// adversary deliberately picks *contiguous* keys: pass
/// [`KeyMapping::Identity`] to model that attack).
///
/// [`RangePartitioner`]: scp_cluster::partition::RangePartitioner
///
/// # Errors
///
/// Returns an error on invalid or mismatched configs.
pub fn run_rate_simulation_with(
    cfg: &SimConfig,
    cluster: &mut Cluster,
    cache_capacity: usize,
    mapping: &KeyMapping,
) -> Result<LoadReport> {
    cfg.validate()?;
    if cluster.node_count() != cfg.nodes {
        return Err(SimError::InvalidConfig {
            field: "nodes",
            reason: format!(
                "cluster has {} nodes, config says {}",
                cluster.node_count(),
                cfg.nodes
            ),
        });
    }
    cluster.reset();

    let probs = cfg.pattern.rank_probs();
    let mut cache_load = 0.0;

    for rank in 0..probs.support_bound() {
        let p = probs.get(rank);
        if p <= 0.0 {
            continue;
        }
        let rate = cfg.rate * p;
        if rank < cache_capacity as u64 {
            cache_load += rate;
        } else {
            let key = KeyId::new(mapping.apply(rank));
            // NoLiveReplica is accounted as unserved inside the cluster.
            let _ = cluster.apply_rate(key, rate);
        }
    }

    Ok(LoadReport {
        snapshot: cluster.snapshot(),
        cache_load,
        offered: cfg.rate,
        unserved: cluster.unserved(),
        cache_stats: None,
    })
}

/// Steady-state propagation under online admission.
///
/// The oracle path's hard `rank < c` cut assumes the cache magically
/// holds the `c` most popular keys. Here the effective cache is driven
/// with a seeded rank stream drawn from the configured pattern — a
/// warmup half, then a measured half whose per-rank hit frequencies
/// become the admission filter: rank load `R·p` splits into
/// `R·p·ĥ(rank)` absorbed by the cache and the residual propagated to
/// the cluster. This makes the gap between provable oracle provisioning
/// and a deployable sketch-driven cache directly measurable.
fn run_rate_simulation_online(cfg: &SimConfig, cluster: &mut Cluster) -> Result<LoadReport> {
    cluster.reset();
    let mapping = KeyMapping::scattered(cfg.items, mix(&[cfg.seed, 3]))?;
    let probs = cfg.pattern.rank_probs();
    let support = probs.support_bound();

    let mut cache = cfg.build_cache(0..cfg.cache_capacity as u64);
    // Seed lane 5: distinct from the mapping (3) and the query engine's
    // sampling stream (4) so engines stay independently reproducible.
    let mut sampler = cfg.pattern.sampler(mix(&[cfg.seed, 5]))?;

    // Enough draws for the admission sketch to cross several halving
    // windows (sample size is 10·c) at any capacity.
    let measured = 50_000_u64.max(cfg.cache_capacity as u64 * 200);
    for _ in 0..measured {
        let _ = cache.request(sampler.sample());
    }
    cache.reset_stats();
    let mut hits = vec![0u64; support as usize];
    let mut draws = vec![0u64; support as usize];
    for _ in 0..measured {
        let rank = sampler.sample();
        let hit = cache.request(rank).is_hit();
        if let Some(d) = draws.get_mut(rank as usize) {
            *d += 1;
            if hit {
                if let Some(h) = hits.get_mut(rank as usize) {
                    *h += 1;
                }
            }
        }
    }

    let mut cache_load = 0.0;
    for rank in 0..support {
        let p = probs.get(rank);
        if p <= 0.0 {
            continue;
        }
        let rate = cfg.rate * p;
        let d = draws.get(rank as usize).copied().unwrap_or(0);
        let h = hits.get(rank as usize).copied().unwrap_or(0);
        let hit_prob = if d > 0 { h as f64 / d as f64 } else { 0.0 };
        cache_load += rate * hit_prob;
        let residual = rate * (1.0 - hit_prob);
        if residual > 0.0 {
            let key = KeyId::new(mapping.apply(rank));
            // NoLiveReplica is accounted as unserved inside the cluster.
            let _ = cluster.apply_rate(key, residual);
        }
    }

    Ok(LoadReport {
        snapshot: cluster.snapshot(),
        cache_load,
        offered: cfg.rate,
        unserved: cluster.unserved(),
        cache_stats: Some(*cache.stats()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, PartitionerKind, SelectorKind};
    use scp_workload::AccessPattern;

    fn config(c: usize, x: u64) -> SimConfig {
        SimConfig {
            nodes: 100,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: c,
            items: 10_000,
            rate: 1e4,
            pattern: AccessPattern::uniform_subset(x, 10_000).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 42,
        }
    }

    #[test]
    fn conserves_offered_rate() {
        let r = run_rate_simulation(&config(10, 50)).unwrap();
        assert!(r.is_conserved(1e-9));
        assert_eq!(r.unserved, 0.0);
    }

    #[test]
    fn cache_absorbs_exactly_head_mass() {
        // Uniform over 50 keys, cache 10 -> cache gets 20% of traffic.
        let r = run_rate_simulation(&config(10, 50)).unwrap();
        assert!((r.cache_fraction() - 0.2).abs() < 1e-9);
        assert!((r.backend_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn fully_cached_subset_leaves_backend_idle() {
        let r = run_rate_simulation(&config(50, 50)).unwrap();
        assert!((r.cache_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(r.snapshot.total(), 0.0);
        assert_eq!(r.gain().value(), 0.0);
    }

    #[test]
    fn no_cache_sends_everything_to_backend() {
        let mut cfg = config(10, 50);
        cfg.cache_kind = CacheKind::None;
        let r = run_rate_simulation(&cfg).unwrap();
        assert_eq!(r.cache_load, 0.0);
        assert!((r.backend_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_replacement_policies() {
        let mut cfg = config(10, 50);
        cfg.cache_kind = CacheKind::Lru;
        assert!(matches!(
            run_rate_simulation(&cfg),
            Err(SimError::InvalidConfig {
                field: "cache_kind",
                ..
            })
        ));
    }

    #[test]
    fn online_admission_approaches_the_oracle_on_zipf() {
        let mut cfg = config(100, 1);
        cfg.pattern = AccessPattern::zipf(1.01, 10_000).unwrap();
        let oracle = run_rate_simulation(&cfg).unwrap();
        cfg.admission = AdmissionKind::Online;
        let online = run_rate_simulation(&cfg).unwrap();
        assert!(online.is_conserved(1e-9));
        assert!(
            online.cache_fraction() > 0.75 * oracle.cache_fraction(),
            "online {} vs oracle {}",
            online.cache_fraction(),
            oracle.cache_fraction()
        );
        // Learning can only lose mass relative to the true top-c cut.
        assert!(online.cache_fraction() <= oracle.cache_fraction() + 1e-9);
    }

    #[test]
    fn online_admission_is_deterministic() {
        let mut cfg = config(10, 50);
        cfg.admission = AdmissionKind::Online;
        let a = run_rate_simulation(&cfg).unwrap();
        let b = run_rate_simulation(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn online_admission_accepts_replacement_policies() {
        let mut cfg = config(10, 50);
        cfg.cache_kind = CacheKind::Lru;
        cfg.admission = AdmissionKind::Online;
        let r = run_rate_simulation(&cfg).unwrap();
        assert!(r.is_conserved(1e-9));
        assert!(r.cache_load > 0.0, "an online LRU must absorb something");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = run_rate_simulation(&config(10, 200)).unwrap();
        let b = run_rate_simulation(&config(10, 200)).unwrap();
        assert_eq!(a, b);
        let mut other = config(10, 200);
        other.seed = 43;
        let c = run_rate_simulation(&other).unwrap();
        assert_ne!(a.snapshot, c.snapshot, "different partitions expected");
    }

    #[test]
    fn attack_on_small_cache_is_effective() {
        // x = c+1 = 11 keys at equal rate, one uncached key carries R/11,
        // even share is R/100: gain must be ~ 100/11 >> 1.
        let r = run_rate_simulation(&config(10, 11)).unwrap();
        assert!(r.gain().is_effective());
        assert!((r.gain().value() - 100.0 / 11.0).abs() < 1e-6);
    }

    #[test]
    fn querying_everything_with_large_cache_is_ineffective() {
        let mut cfg = config(1000, 10_000);
        cfg.pattern = AccessPattern::uniform_subset(10_000, 10_000).unwrap();
        let r = run_rate_simulation(&cfg).unwrap();
        assert!(!r.gain().is_effective(), "gain {}", r.gain());
    }

    #[test]
    fn least_loaded_beats_random_selection_on_max_load() {
        let mut base = config(0, 2000);
        base.cache_kind = CacheKind::None;
        let ll = run_rate_simulation(&base).unwrap();
        let mut rnd = base.clone();
        rnd.selector = SelectorKind::Random;
        let rn = run_rate_simulation(&rnd).unwrap();
        // Random selection splits each key's rate d ways; with many keys
        // both are close to even, but least-loaded should not be worse.
        assert!(ll.max_load() <= rn.max_load() * 1.25);
    }

    #[test]
    fn zipf_pattern_with_decent_cache_is_benign() {
        let mut cfg = config(100, 1);
        cfg.pattern = AccessPattern::zipf(1.01, 10_000).unwrap();
        let r = run_rate_simulation(&cfg).unwrap();
        assert!(r.cache_fraction() > 0.4, "zipf head should hit the cache");
        assert!(!r.gain().is_effective());
    }

    #[test]
    fn failed_nodes_shift_load_to_survivors() {
        let cfg = config(0, 2000);
        let mut cluster = Cluster::new(cfg.build_partitioner().unwrap(), cfg.build_selector());
        for i in 0..10u32 {
            cluster.fail_node(scp_cluster::NodeId::new(i)).unwrap();
        }
        let r = run_rate_simulation_on(&cfg, &mut cluster, 0).unwrap();
        for i in 0..10 {
            assert_eq!(r.snapshot.loads()[i], 0.0, "dead node {i} got load");
        }
        assert!(r.is_conserved(1e-9), "unserved must be accounted");
    }

    #[test]
    fn contiguous_keys_break_range_partitioning() {
        // The paper's excluded case: under range partitioning an adversary
        // querying contiguous keys piles everything onto one replica group.
        use scp_workload::permute::KeyMapping;
        let mut cfg = config(0, 100);
        cfg.cache_kind = CacheKind::None;
        cfg.partitioner = PartitionerKind::Range;
        let mut cluster = Cluster::new(cfg.build_partitioner().unwrap(), cfg.build_selector());
        let contiguous =
            run_rate_simulation_with(&cfg, &mut cluster, 0, &KeyMapping::Identity).unwrap();
        let scattered = run_rate_simulation(&cfg).unwrap();
        assert!(
            contiguous.gain().value() > scattered.gain().value() * 3.0,
            "contiguous {} vs scattered {}",
            contiguous.gain(),
            scattered.gain()
        );
    }

    #[test]
    fn mismatched_cluster_is_rejected() {
        let cfg = config(0, 100);
        let mut small = Cluster::new(
            scp_cluster::partition::HashPartitioner::new(5, 3, 1)
                .map(Box::new)
                .unwrap(),
            cfg.build_selector(),
        );
        assert!(run_rate_simulation_on(&cfg, &mut small, 0).is_err());
    }
}
