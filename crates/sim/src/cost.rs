//! Heterogeneous operation costs.
//!
//! The paper assumes uniform query cost (Section II.B, assumption 4) and
//! points at Fan et al. for the weighted extension. This module supplies
//! that extension: a read/write mix where writes can cost more and —
//! crucially — can *bypass* the front-end cache (a look-through cache
//! serves reads; writes must reach the authoritative replicas). The
//! weighted query engine quantifies how much of the provable protection
//! survives write-heavy floods.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::LoadReport;
use crate::Result;
use scp_cluster::{Cluster, KeyId};
use scp_workload::permute::KeyMapping;
use scp_workload::rng::{mix, next_f64, Xoshiro256StarStar};

/// A read/write cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of serving one read at a back-end node.
    pub read_cost: f64,
    /// Cost of serving one write at a back-end node.
    pub write_cost: f64,
    /// Fraction of queries that are writes, in `[0, 1]`.
    pub write_fraction: f64,
    /// Whether writes skip the front-end cache entirely (write-through /
    /// write-around front ends).
    pub writes_bypass_cache: bool,
}

impl CostModel {
    /// The paper's uniform-cost model.
    pub fn uniform() -> Self {
        Self {
            read_cost: 1.0,
            write_cost: 1.0,
            write_fraction: 0.0,
            writes_bypass_cache: false,
        }
    }

    /// A read/write mix with cache-bypassing writes.
    ///
    /// # Errors
    ///
    /// Returns an error unless costs are finite and positive and the
    /// fraction lies in `[0, 1]`.
    pub fn read_write(read_cost: f64, write_cost: f64, write_fraction: f64) -> Result<Self> {
        let model = Self {
            read_cost,
            write_cost,
            write_fraction,
            writes_bypass_cache: true,
        };
        model.validate()?;
        Ok(model)
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns an error on non-positive costs or an out-of-range fraction.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("read_cost", self.read_cost),
            ("write_cost", self.write_cost),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::InvalidConfig {
                    field: "cost_model",
                    reason: format!("{name} must be finite and positive, got {v}"),
                });
            }
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(SimError::InvalidConfig {
                field: "cost_model",
                reason: format!(
                    "write_fraction must lie in [0, 1], got {}",
                    self.write_fraction
                ),
            });
        }
        Ok(())
    }

    /// Mean cost of one query under this model.
    pub fn mean_cost(&self) -> f64 {
        self.write_fraction * self.write_cost + (1.0 - self.write_fraction) * self.read_cost
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::uniform()
    }
}

/// Query-sampling simulation with per-operation costs.
///
/// Like [`crate::query_engine::run_query_simulation`], but each query is a
/// read or a write per the model; node loads and cache load are measured
/// in *cost units*, and the report's `offered` is the total cost so gains
/// stay normalized.
///
/// # Errors
///
/// Returns an error on invalid configs, models, or `queries == 0`.
pub fn run_weighted_query_simulation(
    cfg: &SimConfig,
    queries: u64,
    model: &CostModel,
) -> Result<LoadReport> {
    cfg.validate()?;
    model.validate()?;
    if queries == 0 {
        return Err(SimError::InvalidConfig {
            field: "queries",
            reason: "need at least one query".to_owned(),
        });
    }

    let mapping = KeyMapping::scattered(cfg.items, mix(&[cfg.seed, 3]))?;
    let mut sampler = cfg.pattern.sampler(mix(&[cfg.seed, 4]))?;
    let top = (cfg.cache_capacity as u64).min(cfg.items);
    let ranked = (0..top).map(|rank| mapping.apply(rank));
    let mut cache = cfg.build_cache(ranked);
    let mut cluster = Cluster::new(cfg.build_partitioner()?, cfg.build_selector());
    let mut op_rng = Xoshiro256StarStar::seed_from_u64(mix(&[cfg.seed, 7]));

    let mut cache_load = 0.0;
    let mut offered = 0.0;
    for _ in 0..queries {
        let key = mapping.apply(sampler.sample());
        let is_write = next_f64(&mut op_rng) < model.write_fraction;
        let cost = if is_write {
            model.write_cost
        } else {
            model.read_cost
        };
        offered += cost;
        if is_write && model.writes_bypass_cache {
            let _ = cluster.route_query_with_cost(KeyId::new(key), cost);
            continue;
        }
        if cache.request(key).is_hit() {
            cache_load += cost;
        } else {
            let _ = cluster.route_query_with_cost(KeyId::new(key), cost);
        }
    }

    Ok(LoadReport {
        snapshot: cluster.snapshot(),
        cache_load,
        offered,
        unserved: cluster.unserved(),
        cache_stats: Some(*cache.stats()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind};
    use scp_workload::AccessPattern;

    fn config(c: usize, x: u64) -> SimConfig {
        SimConfig {
            nodes: 50,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: c,
            items: 5_000,
            rate: 1e4,
            pattern: AccessPattern::uniform_subset(x, 5_000).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 21,
        }
    }

    #[test]
    fn model_validation() {
        assert!(CostModel::read_write(0.0, 1.0, 0.5).is_err());
        assert!(CostModel::read_write(1.0, -1.0, 0.5).is_err());
        assert!(CostModel::read_write(1.0, 1.0, 1.5).is_err());
        assert!(CostModel::read_write(1.0, 5.0, 0.2).is_ok());
        assert!((CostModel::read_write(1.0, 5.0, 0.25).unwrap().mean_cost() - 2.0).abs() < 1e-12);
        assert_eq!(CostModel::default(), CostModel::uniform());
    }

    #[test]
    fn uniform_model_matches_plain_query_engine() {
        let cfg = config(10, 100);
        let weighted = run_weighted_query_simulation(&cfg, 50_000, &CostModel::uniform()).unwrap();
        let plain = crate::query_engine::run_query_simulation(&cfg, 50_000).unwrap();
        // Different RNG draw order (op rng) does not affect key choice;
        // loads must match exactly since all costs are 1 and no bypass.
        assert_eq!(weighted.snapshot, plain.snapshot);
        assert_eq!(weighted.cache_load, plain.cache_load);
    }

    #[test]
    fn conservation_in_cost_units() {
        let model = CostModel::read_write(1.0, 4.0, 0.3).unwrap();
        let r = run_weighted_query_simulation(&config(10, 100), 50_000, &model).unwrap();
        assert!(r.is_conserved(1e-9));
        // Offered is close to queries * mean cost.
        assert!((r.offered / 50_000.0 - model.mean_cost()).abs() < 0.05);
    }

    #[test]
    fn cache_bypassing_writes_defeat_the_cache() {
        // Fully cached subset: pure reads never touch the backend, but a
        // 30% write mix leaks cost straight through.
        let cfg = config(100, 100);
        let reads_only =
            run_weighted_query_simulation(&cfg, 30_000, &CostModel::uniform()).unwrap();
        assert_eq!(reads_only.snapshot.total(), 0.0);

        let writes = CostModel::read_write(1.0, 1.0, 0.3).unwrap();
        let with_writes = run_weighted_query_simulation(&cfg, 30_000, &writes).unwrap();
        assert!(
            with_writes.snapshot.total() > 0.25 * 30_000.0,
            "writes must reach the backend, got {}",
            with_writes.snapshot.total()
        );
    }

    #[test]
    fn expensive_writes_scale_backend_cost() {
        let cfg = config(0, 100);
        let cheap = CostModel::read_write(1.0, 1.0, 0.5).unwrap();
        let pricey = CostModel::read_write(1.0, 10.0, 0.5).unwrap();
        let a = run_weighted_query_simulation(&cfg, 40_000, &cheap).unwrap();
        let b = run_weighted_query_simulation(&cfg, 40_000, &pricey).unwrap();
        let ratio = b.snapshot.total() / a.snapshot.total();
        assert!(
            ratio > 4.0 && ratio < 7.0,
            "expected ~5.5x total cost, got {ratio}"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let model = CostModel::read_write(1.0, 3.0, 0.2).unwrap();
        let a = run_weighted_query_simulation(&config(10, 50), 20_000, &model).unwrap();
        let b = run_weighted_query_simulation(&config(10, 50), 20_000, &model).unwrap();
        assert_eq!(a, b);
    }
}
