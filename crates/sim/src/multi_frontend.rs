//! Multiple front-end caches.
//!
//! Production clusters run several load-balancer front ends, not one.
//! How the client tier routes queries to them decides how much cache the
//! system effectively has:
//!
//! * [`FrontendRouting::ByClient`] — clients are spread over front ends
//!   independent of the key (random L4 balancing). Every front end sees
//!   the same distribution and caches the same top-`c` keys: the system
//!   behaves exactly like one cache of `c` entries.
//! * [`FrontendRouting::ByKey`] — a key-hash router sends each key to one
//!   front end. Front ends cache the top-`c` *of their shard*, so the
//!   effective cache is `f·c` entries.
//!
//! The paper's single-cache bound therefore transfers verbatim to
//! by-client fleets, and improves by a factor `f` for by-key fleets —
//! this module lets the ablation measure both.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::LoadReport;
use crate::Result;
use scp_cache::Cache;
use scp_cluster::{Cluster, KeyId};
use scp_workload::permute::KeyMapping;
use scp_workload::rng::{mix, next_below, Xoshiro256StarStar};

/// How queries are routed to front-end caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrontendRouting {
    /// Key-agnostic spreading (each query hits a uniformly random front
    /// end) — models random client-side or L4 balancing.
    ByClient,
    /// Deterministic key-hash routing — every key always hits the same
    /// front end.
    ByKey,
}

impl FrontendRouting {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FrontendRouting::ByClient => "by-client",
            FrontendRouting::ByKey => "by-key",
        }
    }
}

/// Outcome of a multi-front-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFrontendReport {
    /// Aggregate backend/cache accounting.
    pub load: LoadReport,
    /// Hit rate of each front end.
    pub frontend_hit_rates: Vec<f64>,
    /// Number of distinct keys resident across all front ends at the end.
    pub total_resident: usize,
}

/// Runs a query-sampling simulation with `frontends` independent caches of
/// `cfg.cache_capacity` entries each.
///
/// Perfect caches are seeded with the top keys *of the traffic each front
/// end actually sees* (global top-`c` for by-client routing, shard top-`c`
/// for by-key routing); replacement policies warm up organically.
///
/// # Errors
///
/// Returns an error on invalid configs, `frontends == 0`, or
/// `queries == 0`.
pub fn run_multi_frontend_simulation(
    cfg: &SimConfig,
    frontends: usize,
    routing: FrontendRouting,
    queries: u64,
) -> Result<MultiFrontendReport> {
    cfg.validate()?;
    if frontends == 0 {
        return Err(SimError::InvalidConfig {
            field: "frontends",
            reason: "need at least one front end".to_owned(),
        });
    }
    if queries == 0 {
        return Err(SimError::InvalidConfig {
            field: "queries",
            reason: "need at least one query".to_owned(),
        });
    }

    let mapping = KeyMapping::scattered(cfg.items, mix(&[cfg.seed, 3]))?;
    let mut sampler = cfg.pattern.sampler(mix(&[cfg.seed, 4]))?;
    let mut route_rng = Xoshiro256StarStar::seed_from_u64(mix(&[cfg.seed, 8]));

    // Seed each perfect cache with the top-c keys of its own traffic.
    let mut caches: Vec<Box<dyn Cache<u64>>> = (0..frontends)
        .map(|f| {
            let ranked: Vec<u64> = match routing {
                FrontendRouting::ByClient => (0..cfg.items)
                    .map(|rank| mapping.apply(rank))
                    .take(cfg.cache_capacity)
                    .collect(),
                FrontendRouting::ByKey => (0..cfg.items)
                    .map(|rank| mapping.apply(rank))
                    .filter(|key| frontend_for_key(*key, frontends) == f)
                    .take(cfg.cache_capacity)
                    .collect(),
            };
            cfg.build_cache(ranked)
        })
        .collect();
    let mut cluster = Cluster::new(cfg.build_partitioner()?, cfg.build_selector());

    let mut cache_load = 0u64;
    for _ in 0..queries {
        let key = mapping.apply(sampler.sample());
        let f = match routing {
            FrontendRouting::ByClient => next_below(&mut route_rng, frontends as u64) as usize,
            FrontendRouting::ByKey => frontend_for_key(key, frontends),
        };
        if caches[f].request(key).is_hit() {
            cache_load += 1;
        } else {
            let _ = cluster.route_query(KeyId::new(key));
        }
    }

    let frontend_hit_rates = caches.iter().map(|c| c.stats().hit_rate()).collect();
    let total_resident = caches.iter().map(|c| c.len()).sum();
    Ok(MultiFrontendReport {
        load: LoadReport {
            snapshot: cluster.snapshot(),
            cache_load: cache_load as f64,
            offered: queries as f64,
            unserved: cluster.unserved(),
            cache_stats: None,
        },
        frontend_hit_rates,
        total_resident,
    })
}

fn frontend_for_key(key: u64, frontends: usize) -> usize {
    (mix(&[key, 0xF407_E4D5]) % frontends as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind};
    use crate::query_engine::run_query_simulation;
    use scp_workload::AccessPattern;

    fn config(c: usize, x: u64) -> SimConfig {
        SimConfig {
            nodes: 50,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: c,
            items: 5_000,
            rate: 1e4,
            pattern: AccessPattern::uniform_subset(x, 5_000).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 31,
        }
    }

    #[test]
    fn validates_inputs() {
        assert!(
            run_multi_frontend_simulation(&config(10, 100), 0, FrontendRouting::ByClient, 100)
                .is_err()
        );
        assert!(
            run_multi_frontend_simulation(&config(10, 100), 2, FrontendRouting::ByClient, 0)
                .is_err()
        );
    }

    #[test]
    fn by_client_matches_single_cache_hit_rate() {
        // 4 front ends, each caching the same global top-c: aggregate hit
        // rate equals one cache of c (~10%).
        let cfg = config(10, 100);
        let multi =
            run_multi_frontend_simulation(&cfg, 4, FrontendRouting::ByClient, 200_000).unwrap();
        let single = run_query_simulation(&cfg, 200_000).unwrap();
        let multi_hit = multi.load.cache_fraction();
        let single_hit = single.cache_fraction();
        assert!(
            (multi_hit - single_hit).abs() < 0.01,
            "by-client {multi_hit} vs single {single_hit}"
        );
        // All front ends cache the same keys: total resident = f * c.
        assert_eq!(multi.total_resident, 40);
    }

    #[test]
    fn by_key_multiplies_effective_cache() {
        // 4 front ends with by-key routing: effectively 4c cache entries,
        // so ~40% of the 100-key uniform attack is absorbed vs ~10%.
        let cfg = config(10, 100);
        let by_key =
            run_multi_frontend_simulation(&cfg, 4, FrontendRouting::ByKey, 200_000).unwrap();
        let by_client =
            run_multi_frontend_simulation(&cfg, 4, FrontendRouting::ByClient, 200_000).unwrap();
        assert!(
            by_key.load.cache_fraction() > by_client.load.cache_fraction() + 0.15,
            "by-key {} should absorb far more than by-client {}",
            by_key.load.cache_fraction(),
            by_client.load.cache_fraction()
        );
    }

    #[test]
    fn one_frontend_equals_plain_engine_hit_rate() {
        let cfg = config(20, 200);
        let multi =
            run_multi_frontend_simulation(&cfg, 1, FrontendRouting::ByKey, 100_000).unwrap();
        let single = run_query_simulation(&cfg, 100_000).unwrap();
        // ByKey with one front end caches the global top-c: same fraction.
        assert!((multi.load.cache_fraction() - single.cache_fraction()).abs() < 0.01);
    }

    #[test]
    fn per_frontend_hit_rates_are_reported() {
        let cfg = config(10, 100);
        let r = run_multi_frontend_simulation(&cfg, 3, FrontendRouting::ByClient, 60_000).unwrap();
        assert_eq!(r.frontend_hit_rates.len(), 3);
        for &hr in &r.frontend_hit_rates {
            assert!((hr - 0.1).abs() < 0.03, "front-end hit rate {hr}");
        }
    }

    #[test]
    fn conservation_holds() {
        let cfg = config(10, 100);
        for routing in [FrontendRouting::ByClient, FrontendRouting::ByKey] {
            let r = run_multi_frontend_simulation(&cfg, 4, routing, 50_000).unwrap();
            assert!(r.load.is_conserved(1e-9), "{}", routing.name());
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let cfg = config(10, 100);
        let a = run_multi_frontend_simulation(&cfg, 4, FrontendRouting::ByKey, 30_000).unwrap();
        let b = run_multi_frontend_simulation(&cfg, 4, FrontendRouting::ByKey, 30_000).unwrap();
        assert_eq!(a, b);
    }
}
