//! Extracting per-key serving assignments from a configuration.
//!
//! The rebalancing experiments need to know *which key sits where at what
//! rate*, not just per-node totals. This module replays the
//! rate-propagation logic while recording a
//! [`scp_cluster::rebalance::KeyAssignment`] per uncached key.

use crate::config::SimConfig;
use crate::Result;
use scp_cluster::rebalance::KeyAssignment;
use scp_cluster::select::RateAssignment;
use scp_cluster::KeyId;
use scp_workload::permute::KeyMapping;
use scp_workload::rng::mix;

/// Replays the rate engine, returning the pinned assignment of every
/// uncached key with positive rate.
///
/// Sticky selectors yield one assignment per key; memoryless selectors
/// yield `d` assignments of `rate/d` each (their steady-state expectation),
/// all still confined to the key's replica group.
///
/// # Errors
///
/// Returns an error on invalid configs.
pub fn collect_assignments(cfg: &SimConfig, cache_capacity: usize) -> Result<Vec<KeyAssignment>> {
    cfg.validate()?;
    let partitioner = cfg.build_partitioner()?;
    let mut selector = cfg.build_selector();
    let mapping = KeyMapping::scattered(cfg.items, mix(&[cfg.seed, 3]))?;
    let probs = cfg.pattern.rank_probs();

    let mut loads = vec![0.0f64; cfg.nodes];
    let mut out = Vec::new();
    for rank in 0..probs.support_bound() {
        let p = probs.get(rank);
        if p <= 0.0 || rank < cache_capacity as u64 {
            continue;
        }
        let rate = cfg.rate * p;
        let key = KeyId::new(mapping.apply(rank));
        let group = partitioner.replica_group(key);
        match selector.rate_assignment(key, group.as_slice(), &loads) {
            RateAssignment::Pinned(node) => {
                loads[node.index()] += rate;
                out.push(KeyAssignment {
                    key,
                    node,
                    rate,
                    group,
                });
            }
            RateAssignment::EvenSplit => {
                let share = rate / group.len() as f64;
                for &node in group.as_slice() {
                    loads[node.index()] += share;
                    out.push(KeyAssignment {
                        key,
                        node,
                        rate: share,
                        group,
                    });
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind};
    use crate::rate_engine::run_rate_simulation;
    use scp_cluster::load::LoadSnapshot;
    use scp_workload::AccessPattern;

    fn config(c: usize, x: u64, selector: SelectorKind) -> SimConfig {
        SimConfig {
            nodes: 40,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: c,
            items: 2_000,
            rate: 1e4,
            pattern: AccessPattern::uniform_subset(x, 2_000).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector,
            seed: 77,
        }
    }

    #[test]
    fn assignments_reproduce_engine_loads_for_sticky_selector() {
        let cfg = config(10, 500, SelectorKind::LeastLoaded);
        let assignments = collect_assignments(&cfg, 10).unwrap();
        assert_eq!(assignments.len(), 490, "one entry per uncached key");
        let mut loads = vec![0.0f64; cfg.nodes];
        for a in &assignments {
            loads[a.node.index()] += a.rate;
        }
        let engine = run_rate_simulation(&cfg).unwrap();
        let rebuilt = LoadSnapshot::new(loads);
        assert!((rebuilt.max() - engine.snapshot.max()).abs() < 1e-9);
        assert!((rebuilt.total() - engine.snapshot.total()).abs() < 1e-9);
    }

    #[test]
    fn memoryless_selector_splits_over_group() {
        let cfg = config(0, 100, SelectorKind::Random);
        let assignments = collect_assignments(&cfg, 0).unwrap();
        assert_eq!(assignments.len(), 300, "d entries per key");
        let per_key: f64 = cfg.rate / 100.0 / 3.0;
        assert!(assignments.iter().all(|a| (a.rate - per_key).abs() < 1e-9));
    }

    #[test]
    fn cached_keys_are_excluded() {
        let cfg = config(50, 100, SelectorKind::LeastLoaded);
        let assignments = collect_assignments(&cfg, 50).unwrap();
        assert_eq!(assignments.len(), 50);
        let total: f64 = assignments.iter().map(|a| a.rate).sum();
        assert!((total - cfg.rate * 0.5).abs() < 1e-6);
    }

    #[test]
    fn every_assignment_sits_inside_its_group() {
        let cfg = config(5, 200, SelectorKind::LeastLoaded);
        for a in collect_assignments(&cfg, 5).unwrap() {
            assert!(a.group.contains(a.node));
        }
    }
}
