//! Empirical critical-cache-size search.
//!
//! Figure 5 locates the cache size where the best achievable attack gain
//! crosses 1.0. The best-response gain is monotone non-increasing in the
//! cache size, so a bisection over `c` finds the empirical critical point
//! with `O(log range)` gain evaluations.
//!
//! The search builds its per-run [`RunSweep`] structures **once** — one
//! partition + key mapping per run, seeded exactly like the per-point
//! path — and every bisection probe is then an incremental grid walk over
//! those held sweeps instead of a fresh `runs`-repetition simulation.
//! Probe gains are bit-identical to the old per-point path: reports match
//! `run_rate_simulation` exactly (see [`crate::sweep`]), and the
//! best-response fold (`f64::max`) is order-independent.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::runner::repeat;
use crate::sweep::{effective_capacity, evaluate_many, RunSweep};
use crate::Result;
use scp_core::bounds::{optimal_subset_size, KParam};

/// One probed candidate cache size in a critical-size search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchProbe {
    /// The cache size that was evaluated.
    pub cache_size: usize,
    /// The best-response gain measured there.
    pub gain: f64,
}

/// Result of a bisection for the empirical critical cache size.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPoint {
    /// Smallest probed cache size with gain `<= threshold`.
    pub cache_size: usize,
    /// The gain measured at that size.
    pub gain_at: f64,
    /// Number of gain evaluations spent.
    pub evaluations: usize,
    /// Every candidate `c` the search evaluated, in probe order — the
    /// search's own observability record, so a surprising critical point
    /// can be audited without re-running the bisection.
    pub trace: Vec<SearchProbe>,
}

impl CriticalPoint {
    /// The search trace as a JSON array of `{cache_size, gain}` objects.
    pub fn trace_json(&self) -> scp_json::Json {
        use scp_json::Json;
        Json::arr(self.trace.iter().map(|p| {
            Json::obj([
                ("cache_size", Json::Num(p.cache_size as f64)),
                ("gain", Json::Num(p.gain)),
            ])
        }))
    }
}

/// Generic bisection: finds the smallest `c` in `[lo, hi]` where the
/// monotone non-increasing `gain(c)` drops to `threshold` or below.
///
/// # Errors
///
/// Propagates errors from `gain`; returns an error if even `gain(hi)`
/// stays above the threshold or the range is empty.
pub fn bisect_threshold<F>(
    mut gain: F,
    lo: usize,
    hi: usize,
    threshold: f64,
) -> Result<CriticalPoint>
where
    F: FnMut(usize) -> Result<f64>,
{
    if lo > hi {
        return Err(SimError::InvalidConfig {
            field: "range",
            reason: format!("empty search range [{lo}, {hi}]"),
        });
    }
    let mut trace: Vec<SearchProbe> = Vec::new();
    let mut probe = |c: usize, trace: &mut Vec<SearchProbe>| -> Result<f64> {
        let g = gain(c)?;
        trace.push(SearchProbe {
            cache_size: c,
            gain: g,
        });
        Ok(g)
    };
    let g_hi = probe(hi, &mut trace)?;
    if g_hi > threshold {
        return Err(SimError::InvalidConfig {
            field: "hi",
            reason: format!("gain {g_hi} at upper bound {hi} still above {threshold}"),
        });
    }
    let mut best = (hi, g_hi);
    let g_lo = probe(lo, &mut trace)?;
    if g_lo <= threshold {
        return Ok(CriticalPoint {
            cache_size: lo,
            gain_at: g_lo,
            evaluations: trace.len(),
            trace,
        });
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let g = probe(mid, &mut trace)?;
        if g <= threshold {
            best = (mid, g);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(CriticalPoint {
        cache_size: best.0,
        gain_at: best.1,
        evaluations: trace.len(),
        trace,
    })
}

/// Builds one [`RunSweep`] per run (seeded `base.for_run(i)`, the same
/// derivation the per-point repetition path uses), striped over threads.
fn build_sweeps(base: &SimConfig, runs: usize, threads: usize) -> Result<Vec<RunSweep>> {
    repeat(runs, threads, |i| {
        RunSweep::new(&base.for_run(i as u64), base.items)
    })
    .into_iter()
    .collect()
}

/// The best-response probe against held per-run sweeps: the max over the
/// candidate plays (`x = c + 1` if it fits, and `x = m`) of the
/// max-over-runs simulated gain.
fn probe_gain(sweeps: &mut [RunSweep], base: &SimConfig, c: usize, threads: usize) -> Result<f64> {
    let effective = effective_capacity(base, c)?;
    let mut xs = Vec::with_capacity(2);
    if (c as u64) + 1 < base.items {
        xs.push(c as u64 + 1);
    }
    xs.push(base.items);
    let mut best = 0.0f64;
    for run in evaluate_many(sweeps, threads, effective, &xs) {
        for report in run? {
            best = best.max(report.gain().value());
        }
    }
    Ok(best)
}

/// The adversary's best-response gain at cache size `c`: the max over the
/// two candidate plays (`x = c + 1` and `x = m`) of the max-over-runs
/// simulated gain.
///
/// Builds fresh per-run sweeps on every call; a bisection should use
/// [`find_critical_cache_size`], which holds the sweeps across probes.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn best_response_gain(base: &SimConfig, c: usize, runs: usize, threads: usize) -> Result<f64> {
    let mut sweeps = build_sweeps(base, runs, threads)?;
    probe_gain(&mut sweeps, base, c, threads)
}

/// Locates the empirical critical cache size for a configuration by
/// bisection of the best-response gain, searching `c` in
/// `[0, theory_hint * 4]` where `theory_hint` is the theoretical `c*`.
///
/// The per-run partitions are built once up front; every probe of the
/// bisection is an incremental sweep over them (see the module docs).
///
/// # Errors
///
/// Propagates simulation errors; fails if the search window is too small.
pub fn find_critical_cache_size(
    base: &SimConfig,
    runs: usize,
    threads: usize,
) -> Result<CriticalPoint> {
    let theory =
        scp_core::bounds::critical_cache_size(base.nodes, base.replication, &KParam::theory());
    let hi = theory
        .saturating_mul(4)
        .min(base.items as usize)
        .max(base.nodes);
    let mut sweeps = build_sweeps(base, runs, threads)?;
    bisect_threshold(|c| probe_gain(&mut sweeps, base, c, threads), 0, hi, 1.0)
}

/// The theory-side worst `x` for reference alongside empirical searches.
pub fn theoretical_worst_x(cfg: &SimConfig, k: &KParam) -> Result<u64> {
    let params = cfg.system_params()?;
    Ok(optimal_subset_size(&params, k).x())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind};
    use crate::runner::repeat_rate_simulation;
    use scp_workload::AccessPattern;

    fn base(n: usize) -> SimConfig {
        SimConfig {
            nodes: n,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: 0, // varied by the search
            items: 50_000,
            rate: 1e4,
            pattern: AccessPattern::uniform_subset(1, 50_000).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 3,
        }
    }

    #[test]
    fn bisect_finds_known_threshold() {
        // gain(c) = 10 - c crosses 1.0 at c = 9.
        let cp = bisect_threshold(|c| Ok(10.0 - c as f64), 0, 100, 1.0).unwrap();
        assert_eq!(cp.cache_size, 9);
        assert!(cp.evaluations < 12, "O(log) evaluations expected");
    }

    #[test]
    fn bisect_trace_records_every_probe() {
        let cp = bisect_threshold(|c| Ok(10.0 - c as f64), 0, 100, 1.0).unwrap();
        assert_eq!(cp.trace.len(), cp.evaluations);
        for probe in &cp.trace {
            assert!((probe.gain - (10.0 - probe.cache_size as f64)).abs() < 1e-12);
        }
        // The winning probe appears in the trace.
        assert!(cp
            .trace
            .iter()
            .any(|p| p.cache_size == cp.cache_size && (p.gain - cp.gain_at).abs() < 1e-12));
        // And the trace serializes.
        let json = cp.trace_json().to_string();
        let back = scp_json::Json::parse(&json).unwrap();
        assert_eq!(back.as_array().unwrap().len(), cp.evaluations);
    }

    #[test]
    fn bisect_handles_always_safe() {
        let cp = bisect_threshold(|_| Ok(0.5), 0, 100, 1.0).unwrap();
        assert_eq!(cp.cache_size, 0);
    }

    #[test]
    fn bisect_rejects_never_safe() {
        assert!(bisect_threshold(|_| Ok(2.0), 0, 100, 1.0).is_err());
        assert!(bisect_threshold(|_| Ok(0.0), 5, 4, 1.0).is_err());
    }

    #[test]
    fn best_response_prefers_small_x_when_cache_small() {
        // c far below c*: x = c+1 dominates querying everything.
        let base = base(100);
        let small_x_gain = {
            let mut cfg = base.clone();
            cfg.cache_capacity = 10;
            cfg.pattern = AccessPattern::uniform_subset(11, base.items).unwrap();
            let (_, agg) = repeat_rate_simulation(&cfg, 4, 0).unwrap();
            agg.max_gain()
        };
        let best = best_response_gain(&base, 10, 4, 0).unwrap();
        assert!(best >= small_x_gain - 1e-9);
        assert!(best > 1.0);
    }

    #[test]
    fn empirical_critical_point_is_near_theory() {
        // Small cluster so the test stays fast: n=100, d=3.
        // Theory (k' = 0): c* = 100 * lnln(100)/ln(3) + 1 ~ 122.
        let cp = find_critical_cache_size(&base(100), 6, 0).unwrap();
        assert!(
            cp.cache_size >= 20 && cp.cache_size <= 250,
            "empirical critical point {} wildly off theory ~122",
            cp.cache_size
        );
        assert!(cp.gain_at <= 1.0);
    }
}
