//! Error type for simulation configuration and execution.

use std::fmt;

/// Errors produced while configuring or running simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration field was outside its legal range or inconsistent
    /// with another field.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Substrate error from the cluster layer.
    Cluster(scp_cluster::ClusterError),
    /// Substrate error from the workload layer.
    Workload(scp_workload::WorkloadError),
    /// Theory-layer error.
    Core(scp_core::CoreError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid simulation config `{field}`: {reason}")
            }
            SimError::Cluster(e) => write!(f, "cluster error: {e}"),
            SimError::Workload(e) => write!(f, "workload error: {e}"),
            SimError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Cluster(e) => Some(e),
            SimError::Workload(e) => Some(e),
            SimError::Core(e) => Some(e),
            SimError::InvalidConfig { .. } => None,
        }
    }
}

impl From<scp_cluster::ClusterError> for SimError {
    fn from(value: scp_cluster::ClusterError) -> Self {
        SimError::Cluster(value)
    }
}

impl From<scp_workload::WorkloadError> for SimError {
    fn from(value: scp_workload::WorkloadError) -> Self {
        SimError::Workload(value)
    }
}

impl From<scp_core::CoreError> for SimError {
    fn from(value: scp_core::CoreError) -> Self {
        SimError::Core(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SimError = scp_workload::WorkloadError::EmptyDistribution.into();
        assert!(e.to_string().contains("workload"));
        assert!(std::error::Error::source(&e).is_some());
        let e: SimError =
            scp_cluster::ClusterError::UnknownNode(scp_cluster::NodeId::new(1)).into();
        assert!(e.to_string().contains("cluster"));
        let e = SimError::InvalidConfig {
            field: "nodes",
            reason: "zero".into(),
        };
        assert!(e.to_string().contains("nodes"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
