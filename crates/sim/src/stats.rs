//! Aggregation statistics for repeated runs.

use scp_json::Json;

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.count as f64).sqrt()
        }
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Linear-interpolated quantile of a sample (`q` in `[0, 1]`).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    // The asserts above guarantee `lo` and `hi` are in range, so the
    // NaN fallback is unreachable.
    let at = |i: usize| sorted.get(i).copied().unwrap_or(f64::NAN);
    if lo == hi {
        at(lo)
    } else {
        let frac = pos - lo as f64;
        at(lo) * (1.0 - frac) + at(hi) * frac
    }
}

/// A compact distribution summary of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        let mut rs = RunningStats::new();
        rs.extend(values.iter().copied());
        Self {
            count: rs.count(),
            mean: rs.mean(),
            stddev: rs.stddev(),
            min: rs.min(),
            p50: quantile(values, 0.5),
            p95: quantile(values, 0.95),
            max: rs.max(),
        }
    }

    /// The summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("mean", Json::Num(self.mean)),
            ("stddev", Json::Num(self.stddev)),
            ("min", Json::Num(self.min)),
            ("p50", Json::Num(self.p50)),
            ("p95", Json::Num(self.p95)),
            ("max", Json::Num(self.max)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        rs.extend(xs.iter().copied());
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1: 32/7.
        assert!((rs.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.min(), 0.0);
        assert_eq!(rs.max(), 0.0);
        assert_eq!(rs.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // Order-independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert!((quantile(&shuffled, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "q must be in")]
    fn quantile_rejects_bad_q() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_is_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p95 > 90.0 && s.p95 < 100.0);
    }
}
