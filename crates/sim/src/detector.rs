//! Online attack detection from load telemetry.
//!
//! The provable defense is *sizing* (`c >= c*`), but operators still want
//! to know an attack is happening — under-provisioned clusters need to
//! trigger mitigation, provisioned ones want visibility. This detector
//! consumes periodic [`LoadReport`] snapshots and flags the signature of
//! the paper's optimal adversary: cache hit-rate pinned at `c/x` with the
//! uncached remainder concentrating on few nodes (high normalized max,
//! high Gini).

use crate::metrics::LoadReport;

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Exponential smoothing factor for the tracked signals, in `(0, 1]`
    /// (1 = no smoothing).
    pub alpha: f64,
    /// Normalized max load above this is suspicious.
    pub gain_threshold: f64,
    /// Gini coefficient above this marks concentration.
    pub gini_threshold: f64,
    /// Consecutive suspicious intervals before raising the alarm.
    pub patience: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            gain_threshold: 1.2,
            gini_threshold: 0.6,
            patience: 3,
        }
    }
}

/// Current detector state for one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorState {
    /// Smoothed normalized max load.
    pub gain_ewma: f64,
    /// Smoothed Gini coefficient of node loads.
    pub gini_ewma: f64,
    /// Consecutive suspicious intervals so far.
    pub strikes: u32,
    /// Whether the alarm is currently raised.
    pub alarmed: bool,
}

/// Sliding-window attack detector over per-interval load reports.
///
/// # Example
///
/// ```
/// use scp_sim::detector::{AttackDetector, DetectorConfig};
/// use scp_sim::metrics::LoadReport;
/// use scp_cluster::load::LoadSnapshot;
///
/// let mut det = AttackDetector::new(DetectorConfig::default());
/// let benign = LoadReport {
///     snapshot: LoadSnapshot::new(vec![1.0; 10]),
///     cache_load: 10.0,
///     offered: 20.0,
///     unserved: 0.0,
///     cache_stats: None,
/// };
/// assert!(!det.observe(&benign).alarmed);
/// ```
#[derive(Debug, Clone)]
pub struct AttackDetector {
    config: DetectorConfig,
    state: Option<DetectorState>,
}

impl AttackDetector {
    /// Creates a detector (thresholds are clamped to sane ranges).
    pub fn new(mut config: DetectorConfig) -> Self {
        config.alpha = config.alpha.clamp(1e-3, 1.0);
        config.patience = config.patience.max(1);
        Self {
            config,
            state: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The latest state, if any interval has been observed.
    pub fn state(&self) -> Option<&DetectorState> {
        self.state.as_ref()
    }

    /// Feeds one interval's report; returns the updated state.
    pub fn observe(&mut self, report: &LoadReport) -> DetectorState {
        let gain = report.gain().value();
        let gini = report.snapshot.gini();
        let a = self.config.alpha;
        let (gain_ewma, gini_ewma) = match self.state {
            Some(prev) => (
                a * gain + (1.0 - a) * prev.gain_ewma,
                a * gini + (1.0 - a) * prev.gini_ewma,
            ),
            None => (gain, gini),
        };
        let suspicious =
            gain_ewma > self.config.gain_threshold || gini_ewma > self.config.gini_threshold;
        let strikes = if suspicious {
            self.state.map_or(1, |s| s.strikes + 1)
        } else {
            0
        };
        let next = DetectorState {
            gain_ewma,
            gini_ewma,
            strikes,
            alarmed: strikes >= self.config.patience,
        };
        self.state = Some(next);
        next
    }

    /// Clears all history.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind, SimConfig};
    use crate::query_engine::run_query_simulation;
    use scp_cluster::load::LoadSnapshot;
    use scp_workload::AccessPattern;

    fn report(loads: Vec<f64>, cache: f64) -> LoadReport {
        let offered = loads.iter().sum::<f64>() + cache;
        LoadReport {
            snapshot: LoadSnapshot::new(loads),
            cache_load: cache,
            offered,
            unserved: 0.0,
            cache_stats: None,
        }
    }

    #[test]
    fn benign_traffic_never_alarms() {
        let mut det = AttackDetector::new(DetectorConfig::default());
        for _ in 0..50 {
            let s = det.observe(&report(vec![1.0, 1.1, 0.9, 1.0], 2.0));
            assert!(!s.alarmed);
            assert_eq!(s.strikes, 0);
        }
    }

    #[test]
    fn sustained_hotspot_alarms_after_patience() {
        let mut det = AttackDetector::new(DetectorConfig::default());
        let hot = report(vec![10.0, 0.5, 0.5, 0.5], 1.0);
        let s1 = det.observe(&hot);
        assert!(!s1.alarmed);
        let s2 = det.observe(&hot);
        assert!(!s2.alarmed);
        let s3 = det.observe(&hot);
        assert!(s3.alarmed, "third strike should alarm: {s3:?}");
    }

    #[test]
    fn transient_blip_is_forgiven() {
        // One hot interval followed by calm: the EWMA may stay elevated
        // for one more interval, but the alarm (3 strikes) never fires and
        // the strike counter drains to zero.
        let mut det = AttackDetector::new(DetectorConfig::default());
        let s = det.observe(&report(vec![10.0, 0.5, 0.5, 0.5], 1.0));
        assert_eq!(s.strikes, 1);
        let mut final_state = s;
        for _ in 0..4 {
            final_state = det.observe(&report(vec![0.1, 0.1, 0.1, 0.1], 5.0));
            assert!(!final_state.alarmed, "{final_state:?}");
        }
        assert_eq!(final_state.strikes, 0, "{final_state:?}");
    }

    #[test]
    fn reset_clears_history() {
        let mut det = AttackDetector::new(DetectorConfig::default());
        det.observe(&report(vec![10.0, 0.1], 0.0));
        det.reset();
        assert!(det.state().is_none());
    }

    #[test]
    fn detects_simulated_attack_but_not_zipf() {
        // Drive the detector with real engine output in intervals.
        let mk = |pattern: AccessPattern, seed: u64| SimConfig {
            nodes: 50,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: 25,
            items: 10_000,
            rate: 1e4,
            pattern,
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed,
        };
        let mut det = AttackDetector::new(DetectorConfig::default());
        // Five benign Zipf intervals...
        for i in 0..5 {
            let r =
                run_query_simulation(&mk(AccessPattern::zipf(1.01, 10_000).unwrap(), i), 20_000)
                    .unwrap();
            let s = det.observe(&r);
            assert!(!s.alarmed, "false positive on zipf interval {i}: {s:?}");
        }
        // ...then the optimal attack (x = c+1) arrives.
        let mut alarmed = false;
        for i in 0..5 {
            let r = run_query_simulation(
                &mk(AccessPattern::uniform_subset(26, 10_000).unwrap(), 100 + i),
                20_000,
            )
            .unwrap();
            alarmed |= det.observe(&r).alarmed;
        }
        assert!(alarmed, "attack went undetected: {:?}", det.state());
    }
}
