//! Experiment configuration and substrate factories.

use crate::error::SimError;
use crate::Result;
use scp_cache::{
    arc::ArcCache, clock::ClockCache, estimated::EstimatedOracleCache, fifo::FifoCache,
    lfu::LfuCache, lru::LruCache, nocache::NoCache, perfect::PerfectCache, slru::SlruCache,
    tinylfu::TinyLfuCache, Cache,
};
use scp_cluster::partition::{Partitioner, PartitionerSpec};
use scp_cluster::select::{
    LeastLoadedSelector, PerQueryLeastLoaded, RandomSelector, ReplicaSelector, RoundRobinSelector,
};
use scp_core::params::SystemParams;
use scp_workload::rng::mix;
use scp_workload::AccessPattern;

/// Builds the `Display`/`FromStr` pair for a kind enum so that the
/// textual form always round-trips with [`name()`] (parsing is
/// case-insensitive; rendering uses the canonical lower-case name).
macro_rules! kind_text {
    ($ty:ident, $field:literal) => {
        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(self.name())
            }
        }

        impl std::str::FromStr for $ty {
            type Err = SimError;

            fn from_str(s: &str) -> Result<Self> {
                $ty::ALL
                    .iter()
                    .find(|k| k.name().eq_ignore_ascii_case(s.trim()))
                    .copied()
                    .ok_or_else(|| SimError::InvalidConfig {
                        field: $field,
                        reason: format!(
                            "unknown {} `{s}`; valid: {}",
                            $field,
                            $ty::ALL.map(|k| k.name()).join(", ")
                        ),
                    })
            }
        }
    };
}

// The partitioner kind lives with the partitioners themselves (its
// `Display`/`FromStr` belong next to `PartitionerSpec`); re-exported
// here so `scp_sim::config::PartitionerKind` call sites keep compiling.
pub use scp_cluster::partition::PartitionerKind;

/// Which rule picks the serving replica within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Uniform random member per query.
    Random,
    /// Per-key round-robin.
    RoundRobin,
    /// Sticky least-loaded (the balls-into-bins d-choice model).
    LeastLoaded,
    /// Memoryless least-loaded per query.
    PerQueryLeastLoaded,
}

impl SelectorKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [SelectorKind; 4] = [
        SelectorKind::Random,
        SelectorKind::RoundRobin,
        SelectorKind::LeastLoaded,
        SelectorKind::PerQueryLeastLoaded,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::Random => "random",
            SelectorKind::RoundRobin => "round-robin",
            SelectorKind::LeastLoaded => "least-loaded",
            SelectorKind::PerQueryLeastLoaded => "per-query-least-loaded",
        }
    }
}

kind_text!(SelectorKind, "selector");

/// Which front-end cache policy filters queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// The paper's popularity oracle.
    Perfect,
    /// Least recently used.
    Lru,
    /// Least frequently used.
    Lfu,
    /// First in, first out.
    Fifo,
    /// CLOCK second-chance.
    Clock,
    /// Segmented LRU.
    Slru,
    /// W-TinyLFU.
    TinyLfu,
    /// Adaptive Replacement Cache.
    Arc,
    /// Space-Saving-driven online approximation of the perfect oracle.
    EstimatedOracle,
    /// No cache at all.
    None,
}

impl CacheKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [CacheKind; 10] = [
        CacheKind::Perfect,
        CacheKind::Lru,
        CacheKind::Lfu,
        CacheKind::Fifo,
        CacheKind::Clock,
        CacheKind::Slru,
        CacheKind::TinyLfu,
        CacheKind::Arc,
        CacheKind::EstimatedOracle,
        CacheKind::None,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CacheKind::Perfect => "perfect",
            CacheKind::Lru => "lru",
            CacheKind::Lfu => "lfu",
            CacheKind::Fifo => "fifo",
            CacheKind::Clock => "clock",
            CacheKind::Slru => "slru",
            CacheKind::TinyLfu => "tinylfu",
            CacheKind::Arc => "arc",
            CacheKind::EstimatedOracle => "estimated-oracle",
            CacheKind::None => "none",
        }
    }
}

kind_text!(CacheKind, "cache_kind");

/// Where the provisioned cache's notion of popularity comes from.
///
/// The paper's provisioning theorems assume the cache holds the true
/// `c` most popular keys — an oracle. A deployable system has to learn
/// popularity online from the query stream instead; this knob selects
/// between the two so the oracle-vs-online *gain gap* can be measured
/// on otherwise identical configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionKind {
    /// Use the configured `cache_kind` verbatim (the paper's
    /// [`CacheKind::Perfect`] oracle by default).
    Oracle,
    /// Online sketch-driven admission: a [`CacheKind::Perfect`] cache is
    /// replaced by [`CacheKind::TinyLfu`]; every other policy already
    /// learns online and is kept as-is.
    Online,
}

impl AdmissionKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [AdmissionKind; 2] = [AdmissionKind::Oracle, AdmissionKind::Online];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionKind::Oracle => "oracle",
            AdmissionKind::Online => "online",
        }
    }
}

kind_text!(AdmissionKind, "admission");

/// A complete description of one simulated system + workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of back-end nodes `n`.
    pub nodes: usize,
    /// Replication factor `d`.
    pub replication: usize,
    /// Front-end cache policy.
    pub cache_kind: CacheKind,
    /// Whether the cache is oracle-informed or learns popularity online.
    pub admission: AdmissionKind,
    /// Front-end cache capacity `c`.
    pub cache_capacity: usize,
    /// Key-space size `m`.
    pub items: u64,
    /// Aggregate client rate `R` in queries/second.
    pub rate: f64,
    /// The access distribution over popularity ranks.
    pub pattern: AccessPattern,
    /// Partitioning scheme.
    pub partitioner: PartitionerKind,
    /// Replica selection rule.
    pub selector: SelectorKind,
    /// Master seed; every random object derives from it deterministically.
    pub seed: u64,
}

/// Deferred access-pattern choice of a [`SimConfigBuilder`].
///
/// The pattern depends on `items` (and, for the default attack, on the
/// cache size), so the builder resolves it at [`SimConfigBuilder::build`]
/// time instead of forcing callers to order their setter calls.
#[derive(Debug, Clone, PartialEq)]
enum PatternSpec {
    /// The paper's optimal attack `x = c + 1` over the final key space.
    AttackHead,
    /// A uniform attack on exactly `x` keys of the final key space.
    AttackX(u64),
    /// A fully specified pattern, used verbatim.
    Explicit(AccessPattern),
}

/// Step-by-step construction of a [`SimConfig`], starting from the
/// paper's Section IV baseline.
///
/// Every field defaults to [`SimConfig::paper_baseline`] (1000 nodes,
/// `d = 3`, 1M keys, 100k qps, hash partitioning, least-loaded selection,
/// perfect cache, the repro suite's master seed) and the access pattern
/// defaults to the optimal `x = c + 1` attack, so the shortest possible
/// call already describes the paper's headline experiment:
///
/// ```
/// use scp_sim::SimConfig;
///
/// let cfg = SimConfig::builder().cache_capacity(200).build()?;
/// assert_eq!(cfg.nodes, 1000);
/// assert_eq!(cfg.pattern.support_bound(), 201); // x = c + 1
/// # Ok::<(), scp_sim::SimError>(())
/// ```
///
/// [`build`](SimConfigBuilder::build) validates the assembled
/// configuration, so an invalid `(n, d, c, m, R)` tuple or a pattern/key
/// space mismatch is unrepresentable at the call site.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfigBuilder {
    nodes: usize,
    replication: usize,
    cache_kind: CacheKind,
    admission: AdmissionKind,
    cache_capacity: usize,
    items: u64,
    rate: f64,
    pattern: PatternSpec,
    partitioner: PartitionerKind,
    selector: SelectorKind,
    seed: u64,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self {
            nodes: 1000,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: 0,
            items: 1_000_000,
            rate: 1e5,
            pattern: PatternSpec::AttackHead,
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 20130708, // ICDCS'13 workshop date, the repro master seed
        }
    }
}

impl SimConfigBuilder {
    /// Sets the number of back-end nodes `n`.
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the replication factor `d`.
    pub fn replication(mut self, d: usize) -> Self {
        self.replication = d;
        self
    }

    /// Sets the front-end cache policy.
    pub fn cache_kind(mut self, kind: CacheKind) -> Self {
        self.cache_kind = kind;
        self
    }

    /// Sets oracle-informed vs online-learned cache admission.
    pub fn admission(mut self, kind: AdmissionKind) -> Self {
        self.admission = kind;
        self
    }

    /// Sets the front-end cache capacity `c`.
    pub fn cache_capacity(mut self, c: usize) -> Self {
        self.cache_capacity = c;
        self
    }

    /// Sets the key-space size `m`.
    pub fn items(mut self, m: u64) -> Self {
        self.items = m;
        self
    }

    /// Sets the aggregate client rate `R` in queries/second.
    pub fn rate(mut self, r: f64) -> Self {
        self.rate = r;
        self
    }

    /// Uses an explicit access pattern (its key space must equal `items`).
    pub fn pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = PatternSpec::Explicit(pattern);
        self
    }

    /// Uses the uniform attack on exactly `x` keys of the key space —
    /// the pattern is built against the final `items` at [`build`] time.
    ///
    /// [`build`]: SimConfigBuilder::build
    pub fn attack_x(mut self, x: u64) -> Self {
        self.pattern = PatternSpec::AttackX(x);
        self
    }

    /// Sets the partitioning scheme.
    pub fn partitioner(mut self, kind: PartitionerKind) -> Self {
        self.partitioner = kind;
        self
    }

    /// Sets the replica selection rule.
    pub fn selector(mut self, kind: SelectorKind) -> Self {
        self.selector = kind;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resolves the pattern, assembles the [`SimConfig`] and validates it.
    ///
    /// # Errors
    ///
    /// Returns an error if the assembled configuration is invalid (bad
    /// `(n, d, c, m, R)` tuple, oversized cache, pattern/key-space
    /// mismatch, or an attack on more keys than the service stores).
    pub fn build(self) -> Result<SimConfig> {
        let pattern = match self.pattern {
            PatternSpec::AttackHead => AccessPattern::uniform_subset(
                (self.cache_capacity as u64 + 1).min(self.items),
                self.items,
            )
            .map_err(SimError::from)?,
            PatternSpec::AttackX(x) => {
                AccessPattern::uniform_subset(x, self.items).map_err(SimError::from)?
            }
            PatternSpec::Explicit(p) => p,
        };
        let cfg = SimConfig {
            nodes: self.nodes,
            replication: self.replication,
            cache_kind: self.cache_kind,
            admission: self.admission,
            cache_capacity: self.cache_capacity,
            items: self.items,
            rate: self.rate,
            pattern,
            partitioner: self.partitioner,
            selector: self.selector,
            seed: self.seed,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

impl SimConfig {
    /// Starts a builder at the paper's Section IV baseline (see
    /// [`SimConfigBuilder`]).
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// A builder pre-loaded with this configuration, for derived
    /// variants: `cfg.to_builder().seed(43).build()?`.
    pub fn to_builder(&self) -> SimConfigBuilder {
        SimConfigBuilder {
            nodes: self.nodes,
            replication: self.replication,
            cache_kind: self.cache_kind,
            admission: self.admission,
            cache_capacity: self.cache_capacity,
            items: self.items,
            rate: self.rate,
            pattern: PatternSpec::Explicit(self.pattern.clone()),
            partitioner: self.partitioner,
            selector: self.selector,
            seed: self.seed,
        }
    }

    /// The paper's Section IV baseline: 1000 nodes, d = 3, 1M keys,
    /// 100k qps, hash partitioning, least-loaded selection, perfect cache.
    pub fn paper_baseline(cache_capacity: usize, pattern: AccessPattern, seed: u64) -> Self {
        Self {
            nodes: 1000,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity,
            items: 1_000_000,
            rate: 1e5,
            pattern,
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error if the `(n, d, c, m, R)` tuple is invalid or the
    /// pattern's key space differs from `items`.
    pub fn validate(&self) -> Result<()> {
        SystemParams::new(
            self.nodes,
            self.replication,
            self.cache_capacity.min(self.items as usize),
            self.items,
            self.rate,
        )?;
        if self.cache_capacity as u64 > self.items {
            return Err(SimError::InvalidConfig {
                field: "cache_capacity",
                reason: format!(
                    "cache of {} exceeds {} stored items",
                    self.cache_capacity, self.items
                ),
            });
        }
        if self.pattern.key_space() != self.items {
            return Err(SimError::InvalidConfig {
                field: "pattern",
                reason: format!(
                    "pattern key space {} != items {}",
                    self.pattern.key_space(),
                    self.items
                ),
            });
        }
        Ok(())
    }

    /// The theory-side view of this configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the tuple is invalid.
    pub fn system_params(&self) -> Result<SystemParams> {
        Ok(SystemParams::new(
            self.nodes,
            self.replication,
            self.cache_capacity,
            self.items,
            self.rate,
        )?)
    }

    /// A JSON description of the configuration, suitable as the header of
    /// a run journal.
    ///
    /// The seed is written as a decimal string so full 64-bit seeds
    /// survive the `f64` number model; the pattern is described
    /// free-form rather than fully serialized.
    pub fn describe_json(&self) -> scp_json::Json {
        use scp_json::Json;
        Json::obj([
            ("nodes", Json::Num(self.nodes as f64)),
            ("replication", Json::Num(self.replication as f64)),
            ("cache_kind", Json::Str(self.cache_kind.name().to_owned())),
            ("admission", Json::Str(self.admission.name().to_owned())),
            (
                "effective_cache_kind",
                Json::Str(self.effective_cache_kind().name().to_owned()),
            ),
            ("cache_capacity", Json::Num(self.cache_capacity as f64)),
            ("items", Json::Num(self.items as f64)),
            ("rate", Json::Num(self.rate)),
            ("pattern", Json::Str(self.pattern.describe())),
            ("partitioner", Json::Str(self.partitioner.name().to_owned())),
            ("selector", Json::Str(self.selector.name().to_owned())),
            ("seed", Json::Str(self.seed.to_string())),
        ])
    }

    /// Copy with a derived seed for repetition `run` (stable mixing).
    pub fn for_run(&self, run: u64) -> Self {
        let mut cfg = self.clone();
        cfg.seed = mix(&[self.seed, 0x5EED_0FF5_E7F0_0D01, run]);
        cfg
    }

    /// Builds the configured partitioner.
    ///
    /// # Errors
    ///
    /// Returns an error if the substrate rejects the parameters.
    pub fn build_partitioner(&self) -> Result<Box<dyn Partitioner>> {
        Ok(self.partitioner_spec().build()?)
    }

    /// The [`PartitionerSpec`] this configuration resolves to — the one
    /// construction surface shared by the sweep engine, the rate engine
    /// and `scp-serve`. The placement seed is derived from the master
    /// seed exactly as `build_partitioner` always has, so specs stay
    /// bit-identical with historical runs.
    pub fn partitioner_spec(&self) -> PartitionerSpec {
        PartitionerSpec::new(self.partitioner)
            .nodes(self.nodes)
            .replication(self.replication)
            .seed(mix(&[self.seed, 1]))
            .items(self.items)
    }

    /// Builds the configured replica selector.
    pub fn build_selector(&self) -> Box<dyn ReplicaSelector> {
        let seed = mix(&[self.seed, 2]);
        match self.selector {
            SelectorKind::Random => Box::new(RandomSelector::new(seed)),
            SelectorKind::RoundRobin => Box::new(RoundRobinSelector::new()),
            SelectorKind::LeastLoaded => Box::new(LeastLoadedSelector::new()),
            SelectorKind::PerQueryLeastLoaded => Box::new(PerQueryLeastLoaded::new()),
        }
    }

    /// The cache policy actually instantiated once the admission knob is
    /// applied: [`AdmissionKind::Online`] swaps the
    /// [`CacheKind::Perfect`] oracle for [`CacheKind::TinyLfu`]; every
    /// other combination is the configured policy verbatim.
    pub fn effective_cache_kind(&self) -> CacheKind {
        match (self.admission, self.cache_kind) {
            (AdmissionKind::Online, CacheKind::Perfect) => CacheKind::TinyLfu,
            (_, kind) => kind,
        }
    }

    /// Builds the configured cache over `u64` key ids, honoring the
    /// admission knob (see [`SimConfig::effective_cache_kind`]).
    ///
    /// `ranked_keys` supplies the true popularity order for
    /// [`CacheKind::Perfect`]; other policies ignore it.
    pub fn build_cache<I: IntoIterator<Item = u64>>(&self, ranked_keys: I) -> Box<dyn Cache<u64>> {
        let c = self.cache_capacity;
        match self.effective_cache_kind() {
            CacheKind::Perfect => Box::new(PerfectCache::new(c, ranked_keys)),
            CacheKind::Lru => Box::new(LruCache::new(c)),
            CacheKind::Lfu => Box::new(LfuCache::new(c)),
            CacheKind::Fifo => Box::new(FifoCache::new(c)),
            CacheKind::Clock => Box::new(ClockCache::new(c)),
            CacheKind::Slru => Box::new(SlruCache::new(c)),
            CacheKind::TinyLfu => Box::new(TinyLfuCache::new(c)),
            CacheKind::Arc => Box::new(ArcCache::new(c)),
            CacheKind::EstimatedOracle => Box::new(EstimatedOracleCache::new(c)),
            CacheKind::None => Box::new(NoCache::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> SimConfig {
        SimConfig {
            nodes: 10,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            admission: AdmissionKind::Oracle,
            cache_capacity: 5,
            items: 100,
            rate: 1e3,
            pattern: AccessPattern::uniform_subset(6, 100).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 1,
        }
    }

    #[test]
    fn valid_config_passes() {
        base_config().validate().unwrap();
        base_config().system_params().unwrap();
    }

    #[test]
    fn validation_catches_mismatched_pattern() {
        let mut cfg = base_config();
        cfg.pattern = AccessPattern::uniform_subset(6, 999).unwrap();
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig {
                field: "pattern",
                ..
            })
        ));
    }

    #[test]
    fn validation_catches_oversized_cache() {
        let mut cfg = base_config();
        cfg.cache_capacity = 101;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_cluster_shape() {
        let mut cfg = base_config();
        cfg.replication = 11;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn for_run_derives_distinct_deterministic_seeds() {
        let cfg = base_config();
        let a = cfg.for_run(0);
        let b = cfg.for_run(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.seed, cfg.for_run(0).seed);
        assert_ne!(a.seed, cfg.seed);
    }

    #[test]
    fn all_partitioners_build() {
        for kind in PartitionerKind::ALL {
            let mut cfg = base_config();
            cfg.partitioner = kind;
            let p = cfg.build_partitioner().unwrap();
            assert_eq!(p.node_count(), 10);
            assert_eq!(p.replication_factor(), 3);
        }
    }

    #[test]
    fn all_selectors_build() {
        for kind in SelectorKind::ALL {
            let mut cfg = base_config();
            cfg.selector = kind;
            let _ = cfg.build_selector();
        }
    }

    #[test]
    fn all_caches_build_with_correct_capacity() {
        for kind in CacheKind::ALL {
            let mut cfg = base_config();
            cfg.cache_kind = kind;
            let cache = cfg.build_cache(0..5);
            if kind == CacheKind::None {
                assert_eq!(cache.capacity(), 0);
            } else {
                assert_eq!(cache.capacity(), 5, "{}", kind.name());
            }
        }
    }

    #[test]
    fn paper_baseline_matches_section_four() {
        let cfg = SimConfig::paper_baseline(
            200,
            AccessPattern::uniform_subset(201, 1_000_000).unwrap(),
            9,
        );
        cfg.validate().unwrap();
        assert_eq!(cfg.nodes, 1000);
        assert_eq!(cfg.replication, 3);
        assert_eq!(cfg.items, 1_000_000);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PartitionerKind::Hash.name(), "hash");
        assert_eq!(PartitionerKind::MultiProbe.name(), "multi-probe");
        assert_eq!(SelectorKind::LeastLoaded.name(), "least-loaded");
        assert_eq!(CacheKind::TinyLfu.name(), "tinylfu");
    }

    #[test]
    fn admission_kind_text_round_trips_every_variant() {
        for kind in AdmissionKind::ALL {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.name().parse::<AdmissionKind>().unwrap(), kind);
        }
        assert!("psychic".parse::<AdmissionKind>().is_err());
    }

    #[test]
    fn online_admission_swaps_the_oracle_for_tinylfu() {
        let mut cfg = base_config();
        assert_eq!(cfg.effective_cache_kind(), CacheKind::Perfect);
        cfg.admission = AdmissionKind::Online;
        assert_eq!(cfg.effective_cache_kind(), CacheKind::TinyLfu);
        assert_eq!(cfg.build_cache(0..5).name(), "tinylfu");
        // Non-oracle policies are untouched by the knob.
        cfg.cache_kind = CacheKind::Lru;
        assert_eq!(cfg.effective_cache_kind(), CacheKind::Lru);
    }

    #[test]
    fn cache_kind_text_round_trips_every_variant() {
        for kind in CacheKind::ALL {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.name().parse::<CacheKind>().unwrap(), kind);
        }
    }

    #[test]
    fn partitioner_kind_text_round_trips_every_variant() {
        for kind in PartitionerKind::ALL {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.name().parse::<PartitionerKind>().unwrap(), kind);
        }
    }

    #[test]
    fn selector_kind_text_round_trips_every_variant() {
        for kind in SelectorKind::ALL {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.name().parse::<SelectorKind>().unwrap(), kind);
        }
    }

    #[test]
    fn kind_parsing_is_case_insensitive_and_rejects_junk() {
        assert_eq!("TinyLFU".parse::<CacheKind>().unwrap(), CacheKind::TinyLfu);
        assert_eq!(
            " Least-Loaded ".parse::<SelectorKind>().unwrap(),
            SelectorKind::LeastLoaded
        );
        let err = "quantum".parse::<PartitionerKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("quantum"), "{msg}");
        assert!(msg.contains("rendezvous"), "lists valid names: {msg}");
    }

    #[test]
    fn builder_defaults_match_paper_baseline() {
        let built = SimConfig::builder().cache_capacity(200).build().unwrap();
        let baseline = SimConfig::paper_baseline(
            200,
            AccessPattern::uniform_subset(201, 1_000_000).unwrap(),
            20130708,
        );
        assert_eq!(built, baseline);
    }

    #[test]
    fn builder_sets_every_field() {
        let pattern = AccessPattern::zipf(1.1, 5000).unwrap();
        let cfg = SimConfig::builder()
            .nodes(20)
            .replication(2)
            .cache_kind(CacheKind::Lru)
            .cache_capacity(7)
            .items(5000)
            .rate(123.0)
            .pattern(pattern.clone())
            .partitioner(PartitionerKind::Ring)
            .selector(SelectorKind::Random)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(cfg.nodes, 20);
        assert_eq!(cfg.replication, 2);
        assert_eq!(cfg.cache_kind, CacheKind::Lru);
        assert_eq!(cfg.cache_capacity, 7);
        assert_eq!(cfg.items, 5000);
        assert_eq!(cfg.rate, 123.0);
        assert_eq!(cfg.pattern, pattern);
        assert_eq!(cfg.partitioner, PartitionerKind::Ring);
        assert_eq!(cfg.selector, SelectorKind::Random);
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    fn builder_attack_x_resolves_against_final_items() {
        // attack_x before items: the pattern is still built over the
        // final key space, so setter order cannot corrupt the config.
        let cfg = SimConfig::builder()
            .nodes(50)
            .attack_x(11)
            .items(2000)
            .cache_capacity(10)
            .build()
            .unwrap();
        assert_eq!(cfg.pattern.support_bound(), 11);
        assert_eq!(cfg.pattern.key_space(), 2000);
    }

    #[test]
    fn builder_rejects_invalid_configs_at_build() {
        // Oversized cache.
        assert!(SimConfig::builder()
            .nodes(10)
            .items(100)
            .cache_capacity(101)
            .build()
            .is_err());
        // Replication above the node count.
        assert!(SimConfig::builder()
            .nodes(5)
            .replication(6)
            .items(100)
            .build()
            .is_err());
        // Mismatched explicit pattern.
        assert!(SimConfig::builder()
            .nodes(10)
            .items(100)
            .pattern(AccessPattern::uniform_subset(5, 999).unwrap())
            .build()
            .is_err());
    }

    #[test]
    fn to_builder_round_trips_and_derives() {
        let cfg = base_config();
        assert_eq!(cfg.to_builder().build().unwrap(), cfg);
        let derived = cfg.to_builder().seed(77).build().unwrap();
        assert_eq!(derived.seed, 77);
        assert_eq!(derived.pattern, cfg.pattern);
    }
}
