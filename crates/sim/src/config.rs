//! Experiment configuration and substrate factories.

use crate::error::SimError;
use crate::Result;
use scp_cache::{
    arc::ArcCache, clock::ClockCache, estimated::EstimatedOracleCache, fifo::FifoCache,
    lfu::LfuCache, lru::LruCache, nocache::NoCache, perfect::PerfectCache, slru::SlruCache,
    tinylfu::TinyLfuCache, Cache,
};
use scp_cluster::partition::{
    ConsistentHashRing, HashPartitioner, Partitioner, RangePartitioner, RendezvousPartitioner,
};
use scp_cluster::select::{
    LeastLoadedSelector, PerQueryLeastLoaded, RandomSelector, ReplicaSelector, RoundRobinSelector,
};
use scp_core::params::SystemParams;
use scp_workload::rng::mix;
use scp_workload::AccessPattern;

/// Which partitioning scheme maps keys to replica groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// Independent random placement (the paper's model).
    Hash,
    /// Consistent-hashing ring with virtual nodes.
    Ring,
    /// Rendezvous / highest-random-weight hashing.
    Rendezvous,
    /// Contiguous ranges — violates the randomized-partitioning
    /// assumption; kept as the paper's excluded counter-example.
    Range,
}

impl PartitionerKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [PartitionerKind; 4] = [
        PartitionerKind::Hash,
        PartitionerKind::Ring,
        PartitionerKind::Rendezvous,
        PartitionerKind::Range,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PartitionerKind::Hash => "hash",
            PartitionerKind::Ring => "ring",
            PartitionerKind::Rendezvous => "rendezvous",
            PartitionerKind::Range => "range",
        }
    }
}

/// Which rule picks the serving replica within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Uniform random member per query.
    Random,
    /// Per-key round-robin.
    RoundRobin,
    /// Sticky least-loaded (the balls-into-bins d-choice model).
    LeastLoaded,
    /// Memoryless least-loaded per query.
    PerQueryLeastLoaded,
}

impl SelectorKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [SelectorKind; 4] = [
        SelectorKind::Random,
        SelectorKind::RoundRobin,
        SelectorKind::LeastLoaded,
        SelectorKind::PerQueryLeastLoaded,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::Random => "random",
            SelectorKind::RoundRobin => "round-robin",
            SelectorKind::LeastLoaded => "least-loaded",
            SelectorKind::PerQueryLeastLoaded => "per-query-least-loaded",
        }
    }
}

/// Which front-end cache policy filters queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// The paper's popularity oracle.
    Perfect,
    /// Least recently used.
    Lru,
    /// Least frequently used.
    Lfu,
    /// First in, first out.
    Fifo,
    /// CLOCK second-chance.
    Clock,
    /// Segmented LRU.
    Slru,
    /// W-TinyLFU.
    TinyLfu,
    /// Adaptive Replacement Cache.
    Arc,
    /// Space-Saving-driven online approximation of the perfect oracle.
    EstimatedOracle,
    /// No cache at all.
    None,
}

impl CacheKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [CacheKind; 10] = [
        CacheKind::Perfect,
        CacheKind::Lru,
        CacheKind::Lfu,
        CacheKind::Fifo,
        CacheKind::Clock,
        CacheKind::Slru,
        CacheKind::TinyLfu,
        CacheKind::Arc,
        CacheKind::EstimatedOracle,
        CacheKind::None,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CacheKind::Perfect => "perfect",
            CacheKind::Lru => "lru",
            CacheKind::Lfu => "lfu",
            CacheKind::Fifo => "fifo",
            CacheKind::Clock => "clock",
            CacheKind::Slru => "slru",
            CacheKind::TinyLfu => "tinylfu",
            CacheKind::Arc => "arc",
            CacheKind::EstimatedOracle => "estimated-oracle",
            CacheKind::None => "none",
        }
    }
}

/// A complete description of one simulated system + workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of back-end nodes `n`.
    pub nodes: usize,
    /// Replication factor `d`.
    pub replication: usize,
    /// Front-end cache policy.
    pub cache_kind: CacheKind,
    /// Front-end cache capacity `c`.
    pub cache_capacity: usize,
    /// Key-space size `m`.
    pub items: u64,
    /// Aggregate client rate `R` in queries/second.
    pub rate: f64,
    /// The access distribution over popularity ranks.
    pub pattern: AccessPattern,
    /// Partitioning scheme.
    pub partitioner: PartitionerKind,
    /// Replica selection rule.
    pub selector: SelectorKind,
    /// Master seed; every random object derives from it deterministically.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's Section IV baseline: 1000 nodes, d = 3, 1M keys,
    /// 100k qps, hash partitioning, least-loaded selection, perfect cache.
    pub fn paper_baseline(cache_capacity: usize, pattern: AccessPattern, seed: u64) -> Self {
        Self {
            nodes: 1000,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            cache_capacity,
            items: 1_000_000,
            rate: 1e5,
            pattern,
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error if the `(n, d, c, m, R)` tuple is invalid or the
    /// pattern's key space differs from `items`.
    pub fn validate(&self) -> Result<()> {
        SystemParams::new(
            self.nodes,
            self.replication,
            self.cache_capacity.min(self.items as usize),
            self.items,
            self.rate,
        )?;
        if self.cache_capacity as u64 > self.items {
            return Err(SimError::InvalidConfig {
                field: "cache_capacity",
                reason: format!(
                    "cache of {} exceeds {} stored items",
                    self.cache_capacity, self.items
                ),
            });
        }
        if self.pattern.key_space() != self.items {
            return Err(SimError::InvalidConfig {
                field: "pattern",
                reason: format!(
                    "pattern key space {} != items {}",
                    self.pattern.key_space(),
                    self.items
                ),
            });
        }
        Ok(())
    }

    /// The theory-side view of this configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the tuple is invalid.
    pub fn system_params(&self) -> Result<SystemParams> {
        Ok(SystemParams::new(
            self.nodes,
            self.replication,
            self.cache_capacity,
            self.items,
            self.rate,
        )?)
    }

    /// A JSON description of the configuration, suitable as the header of
    /// a run journal.
    ///
    /// The seed is written as a decimal string so full 64-bit seeds
    /// survive the `f64` number model; the pattern is described
    /// free-form rather than fully serialized.
    pub fn describe_json(&self) -> scp_json::Json {
        use scp_json::Json;
        Json::obj([
            ("nodes", Json::Num(self.nodes as f64)),
            ("replication", Json::Num(self.replication as f64)),
            ("cache_kind", Json::Str(self.cache_kind.name().to_owned())),
            ("cache_capacity", Json::Num(self.cache_capacity as f64)),
            ("items", Json::Num(self.items as f64)),
            ("rate", Json::Num(self.rate)),
            ("pattern", Json::Str(self.pattern.describe())),
            ("partitioner", Json::Str(self.partitioner.name().to_owned())),
            ("selector", Json::Str(self.selector.name().to_owned())),
            ("seed", Json::Str(self.seed.to_string())),
        ])
    }

    /// Copy with a derived seed for repetition `run` (stable mixing).
    pub fn for_run(&self, run: u64) -> Self {
        let mut cfg = self.clone();
        cfg.seed = mix(&[self.seed, 0x5EED_0FF5_E7F0_0D01, run]);
        cfg
    }

    /// Builds the configured partitioner.
    ///
    /// # Errors
    ///
    /// Returns an error if the substrate rejects the parameters.
    pub fn build_partitioner(&self) -> Result<Box<dyn Partitioner>> {
        let seed = mix(&[self.seed, 1]);
        let p: Box<dyn Partitioner> = match self.partitioner {
            PartitionerKind::Hash => {
                Box::new(HashPartitioner::new(self.nodes, self.replication, seed)?)
            }
            PartitionerKind::Ring => {
                Box::new(ConsistentHashRing::new(self.nodes, self.replication, seed)?)
            }
            PartitionerKind::Rendezvous => Box::new(RendezvousPartitioner::new(
                self.nodes,
                self.replication,
                seed,
            )?),
            PartitionerKind::Range => Box::new(RangePartitioner::new(
                self.nodes,
                self.replication,
                self.items,
            )?),
        };
        Ok(p)
    }

    /// Builds the configured replica selector.
    pub fn build_selector(&self) -> Box<dyn ReplicaSelector> {
        let seed = mix(&[self.seed, 2]);
        match self.selector {
            SelectorKind::Random => Box::new(RandomSelector::new(seed)),
            SelectorKind::RoundRobin => Box::new(RoundRobinSelector::new()),
            SelectorKind::LeastLoaded => Box::new(LeastLoadedSelector::new()),
            SelectorKind::PerQueryLeastLoaded => Box::new(PerQueryLeastLoaded::new()),
        }
    }

    /// Builds the configured cache over `u64` key ids.
    ///
    /// `ranked_keys` supplies the true popularity order for
    /// [`CacheKind::Perfect`]; other policies ignore it.
    pub fn build_cache<I: IntoIterator<Item = u64>>(&self, ranked_keys: I) -> Box<dyn Cache<u64>> {
        let c = self.cache_capacity;
        match self.cache_kind {
            CacheKind::Perfect => Box::new(PerfectCache::new(c, ranked_keys)),
            CacheKind::Lru => Box::new(LruCache::new(c)),
            CacheKind::Lfu => Box::new(LfuCache::new(c)),
            CacheKind::Fifo => Box::new(FifoCache::new(c)),
            CacheKind::Clock => Box::new(ClockCache::new(c)),
            CacheKind::Slru => Box::new(SlruCache::new(c)),
            CacheKind::TinyLfu => Box::new(TinyLfuCache::new(c)),
            CacheKind::Arc => Box::new(ArcCache::new(c)),
            CacheKind::EstimatedOracle => Box::new(EstimatedOracleCache::new(c)),
            CacheKind::None => Box::new(NoCache::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> SimConfig {
        SimConfig {
            nodes: 10,
            replication: 3,
            cache_kind: CacheKind::Perfect,
            cache_capacity: 5,
            items: 100,
            rate: 1e3,
            pattern: AccessPattern::uniform_subset(6, 100).unwrap(),
            partitioner: PartitionerKind::Hash,
            selector: SelectorKind::LeastLoaded,
            seed: 1,
        }
    }

    #[test]
    fn valid_config_passes() {
        base_config().validate().unwrap();
        base_config().system_params().unwrap();
    }

    #[test]
    fn validation_catches_mismatched_pattern() {
        let mut cfg = base_config();
        cfg.pattern = AccessPattern::uniform_subset(6, 999).unwrap();
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig {
                field: "pattern",
                ..
            })
        ));
    }

    #[test]
    fn validation_catches_oversized_cache() {
        let mut cfg = base_config();
        cfg.cache_capacity = 101;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_cluster_shape() {
        let mut cfg = base_config();
        cfg.replication = 11;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn for_run_derives_distinct_deterministic_seeds() {
        let cfg = base_config();
        let a = cfg.for_run(0);
        let b = cfg.for_run(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.seed, cfg.for_run(0).seed);
        assert_ne!(a.seed, cfg.seed);
    }

    #[test]
    fn all_partitioners_build() {
        for kind in PartitionerKind::ALL {
            let mut cfg = base_config();
            cfg.partitioner = kind;
            let p = cfg.build_partitioner().unwrap();
            assert_eq!(p.node_count(), 10);
            assert_eq!(p.replication_factor(), 3);
        }
    }

    #[test]
    fn all_selectors_build() {
        for kind in SelectorKind::ALL {
            let mut cfg = base_config();
            cfg.selector = kind;
            let _ = cfg.build_selector();
        }
    }

    #[test]
    fn all_caches_build_with_correct_capacity() {
        for kind in CacheKind::ALL {
            let mut cfg = base_config();
            cfg.cache_kind = kind;
            let cache = cfg.build_cache(0..5);
            if kind == CacheKind::None {
                assert_eq!(cache.capacity(), 0);
            } else {
                assert_eq!(cache.capacity(), 5, "{}", kind.name());
            }
        }
    }

    #[test]
    fn paper_baseline_matches_section_four() {
        let cfg = SimConfig::paper_baseline(
            200,
            AccessPattern::uniform_subset(201, 1_000_000).unwrap(),
            9,
        );
        cfg.validate().unwrap();
        assert_eq!(cfg.nodes, 1000);
        assert_eq!(cfg.replication, 3);
        assert_eq!(cfg.items, 1_000_000);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PartitionerKind::Hash.name(), "hash");
        assert_eq!(SelectorKind::LeastLoaded.name(), "least-loaded");
        assert_eq!(CacheKind::TinyLfu.name(), "tinylfu");
    }
}
