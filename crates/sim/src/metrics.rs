//! Per-run load reports.

use scp_cache::CacheStats;
use scp_cluster::load::LoadSnapshot;
use scp_core::gain::AttackGain;

/// The outcome of one simulation run.
///
/// Loads are in the run's native unit: queries/second for the rate engine,
/// query counts for the sampling engine. All derived metrics normalize by
/// `offered`, so the unit cancels.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Per-node back-end loads.
    pub snapshot: LoadSnapshot,
    /// Load absorbed by the front-end cache.
    pub cache_load: f64,
    /// Total offered load (client rate `R` or query count).
    pub offered: f64,
    /// Load lost because entire replica groups were down.
    pub unserved: f64,
    /// Front-end cache counters (query engine only).
    pub cache_stats: Option<CacheStats>,
}

impl LoadReport {
    /// The paper's attack gain: max node load over the even share
    /// `offered / n`.
    pub fn gain(&self) -> AttackGain {
        AttackGain::new(self.snapshot.normalized_max(self.offered))
    }

    /// Fraction of offered load served by the front-end cache.
    pub fn cache_fraction(&self) -> f64 {
        if self.offered <= 0.0 {
            0.0
        } else {
            self.cache_load / self.offered
        }
    }

    /// Fraction of offered load reaching the back ends.
    pub fn backend_fraction(&self) -> f64 {
        if self.offered <= 0.0 {
            0.0
        } else {
            self.snapshot.total() / self.offered
        }
    }

    /// The most loaded node's absolute load.
    pub fn max_load(&self) -> f64 {
        self.snapshot.max()
    }

    /// Sanity check: cache + backend + unserved accounts for everything
    /// offered (within tolerance).
    pub fn is_conserved(&self, tolerance: f64) -> bool {
        let accounted = self.cache_load + self.snapshot.total() + self.unserved;
        (accounted - self.offered).abs() <= tolerance * self.offered.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LoadReport {
        LoadReport {
            snapshot: LoadSnapshot::new(vec![3.0, 1.0, 1.0, 1.0]),
            cache_load: 4.0,
            offered: 10.0,
            unserved: 0.0,
            cache_stats: None,
        }
    }

    #[test]
    fn gain_normalizes_by_offered() {
        // Even share 10/4 = 2.5; max node 3 => gain 1.2.
        assert!((report().gain().value() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one_when_conserved() {
        let r = report();
        assert!((r.cache_fraction() - 0.4).abs() < 1e-12);
        assert!((r.backend_fraction() - 0.6).abs() < 1e-12);
        assert!(r.is_conserved(1e-9));
    }

    #[test]
    fn conservation_detects_loss() {
        let mut r = report();
        r.cache_load = 1.0;
        assert!(!r.is_conserved(1e-9));
        r.unserved = 3.0;
        assert!(r.is_conserved(1e-9));
    }

    #[test]
    fn zero_offered_is_safe() {
        let r = LoadReport {
            snapshot: LoadSnapshot::new(vec![0.0; 3]),
            cache_load: 0.0,
            offered: 0.0,
            unserved: 0.0,
            cache_stats: None,
        };
        assert_eq!(r.gain().value(), 0.0);
        assert_eq!(r.cache_fraction(), 0.0);
        assert_eq!(r.backend_fraction(), 0.0);
    }
}
