//! Property tests over the simulation engines: conservation, bounds and
//! determinism must hold for *arbitrary* valid configurations, not just
//! the hand-picked ones in the unit tests.
//!
//! Cases are drawn from a seeded in-repo generator rather than an external
//! property-testing framework, so every failure reproduces exactly from the
//! constants below.

use scp_sim::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind, SimConfig};
use scp_sim::query_engine::run_query_simulation;
use scp_sim::rate_engine::run_rate_simulation;
use scp_workload::rng::{next_below, next_f64, Rng, Xoshiro256StarStar};
use scp_workload::AccessPattern;

const CASES: usize = 48;

fn arb_pattern(gen: &mut Xoshiro256StarStar, items: u64) -> AccessPattern {
    match next_below(gen, 3) {
        0 => {
            let x = 1 + next_below(gen, items);
            AccessPattern::uniform_subset(x, items).unwrap()
        }
        1 => {
            let a = 0.5 + (1.6 - 0.5) * next_f64(gen);
            AccessPattern::zipf(a, items).unwrap()
        }
        _ => AccessPattern::uniform(items).unwrap(),
    }
}

fn arb_config(gen: &mut Xoshiro256StarStar) -> SimConfig {
    let nodes = 2 + next_below(gen, 58) as usize;
    let replication = (1 + next_below(gen, 3) as usize).min(nodes);
    let items = 100 + next_below(gen, 1900);
    let cache_capacity = (next_below(gen, 50) as usize).min(items as usize);
    let seed = gen.next_u64();
    let partitioner = match next_below(gen, 3) {
        0 => PartitionerKind::Hash,
        1 => PartitionerKind::Ring,
        _ => PartitionerKind::Range,
    };
    let selector = match next_below(gen, 4) {
        0 => SelectorKind::Random,
        1 => SelectorKind::RoundRobin,
        2 => SelectorKind::LeastLoaded,
        _ => SelectorKind::PerQueryLeastLoaded,
    };
    let pattern = arb_pattern(gen, items);
    SimConfig {
        nodes,
        replication,
        cache_kind: CacheKind::Perfect,
        admission: AdmissionKind::Oracle,
        cache_capacity,
        items,
        rate: 1e4,
        pattern,
        partitioner,
        selector,
        seed,
    }
}

#[test]
fn prop_rate_engine_conserves_and_bounds() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0xE161_0001);
    for case in 0..CASES {
        let cfg = arb_config(&mut gen);
        let r = run_rate_simulation(&cfg).unwrap();
        // Conservation: cache + backend == offered (no failures here).
        assert!(r.is_conserved(1e-9), "case {case}: leaked load: {r:?}");
        assert_eq!(r.unserved, 0.0, "case {case}");
        // Gain cannot exceed n (everything on one node) and max load
        // cannot exceed total backend load.
        assert!(r.gain().value() <= cfg.nodes as f64 + 1e-9, "case {case}");
        assert!(r.max_load() <= r.snapshot.total() + 1e-9, "case {case}");
        // The cache can never absorb more than the offered rate.
        assert!(r.cache_load <= cfg.rate + 1e-9, "case {case}");
    }
}

#[test]
fn prop_rate_engine_deterministic() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0xE161_0002);
    for case in 0..CASES {
        let cfg = arb_config(&mut gen);
        let a = run_rate_simulation(&cfg).unwrap();
        let b = run_rate_simulation(&cfg).unwrap();
        assert_eq!(a, b, "case {case}: engine not deterministic");
    }
}

#[test]
fn prop_query_engine_conserves() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0xE161_0003);
    for case in 0..CASES {
        let cfg = arb_config(&mut gen);
        let queries = 2000u64;
        let r = run_query_simulation(&cfg, queries).unwrap();
        assert!(r.is_conserved(1e-12), "case {case}");
        let stats = r.cache_stats.unwrap();
        assert_eq!(stats.lookups(), queries, "case {case}");
        assert_eq!(stats.hits() as f64, r.cache_load, "case {case}");
        assert_eq!(
            r.snapshot.total(),
            (queries - stats.hits()) as f64,
            "case {case}"
        );
    }
}

#[test]
fn prop_bigger_cache_never_increases_backend_load() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0xE161_0004);
    for case in 0..CASES {
        let cfg = arb_config(&mut gen);
        let extra = 1 + next_below(&mut gen, 39) as usize;
        let small = run_rate_simulation(&cfg).unwrap();
        let mut bigger = cfg.clone();
        bigger.cache_capacity = (cfg.cache_capacity + extra).min(cfg.items as usize);
        let big = run_rate_simulation(&bigger).unwrap();
        assert!(
            big.snapshot.total() <= small.snapshot.total() + 1e-9,
            "case {case}: more cache increased backend load: {} -> {}",
            small.snapshot.total(),
            big.snapshot.total()
        );
    }
}
