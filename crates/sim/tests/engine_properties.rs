//! Property tests over the simulation engines: conservation, bounds and
//! determinism must hold for *arbitrary* valid configurations, not just
//! the hand-picked ones in the unit tests.

use proptest::prelude::*;
use scp_sim::config::{CacheKind, PartitionerKind, SelectorKind, SimConfig};
use scp_sim::query_engine::run_query_simulation;
use scp_sim::rate_engine::run_rate_simulation;
use scp_workload::AccessPattern;

fn arb_pattern(items: u64) -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        (1..=items).prop_map(move |x| AccessPattern::uniform_subset(x, items).unwrap()),
        (0.5f64..1.6).prop_map(move |a| AccessPattern::zipf(a, items).unwrap()),
        Just(AccessPattern::uniform(items).unwrap()),
    ]
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        2usize..60,                   // nodes
        1usize..4,                    // replication (clamped to nodes)
        0usize..50,                   // cache capacity
        100u64..2000,                 // items
        any::<u64>(),                 // seed
        prop_oneof![
            Just(PartitionerKind::Hash),
            Just(PartitionerKind::Ring),
            Just(PartitionerKind::Range),
        ],
        prop_oneof![
            Just(SelectorKind::Random),
            Just(SelectorKind::RoundRobin),
            Just(SelectorKind::LeastLoaded),
            Just(SelectorKind::PerQueryLeastLoaded),
        ],
    )
        .prop_flat_map(|(nodes, d, cache, items, seed, partitioner, selector)| {
            let d = d.min(nodes);
            let cache = cache.min(items as usize);
            arb_pattern(items).prop_map(move |pattern| SimConfig {
                nodes,
                replication: d,
                cache_kind: CacheKind::Perfect,
                cache_capacity: cache,
                items,
                rate: 1e4,
                pattern,
                partitioner,
                selector,
                seed,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_rate_engine_conserves_and_bounds(cfg in arb_config()) {
        let r = run_rate_simulation(&cfg).unwrap();
        // Conservation: cache + backend == offered (no failures here).
        prop_assert!(r.is_conserved(1e-9), "leaked load: {r:?}");
        prop_assert_eq!(r.unserved, 0.0);
        // Gain cannot exceed n (everything on one node) and max load
        // cannot exceed total backend load.
        prop_assert!(r.gain().value() <= cfg.nodes as f64 + 1e-9);
        prop_assert!(r.max_load() <= r.snapshot.total() + 1e-9);
        // The cache can never absorb more than the offered rate.
        prop_assert!(r.cache_load <= cfg.rate + 1e-9);
    }

    #[test]
    fn prop_rate_engine_deterministic(cfg in arb_config()) {
        let a = run_rate_simulation(&cfg).unwrap();
        let b = run_rate_simulation(&cfg).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn prop_query_engine_conserves(cfg in arb_config()) {
        let queries = 2000u64;
        let r = run_query_simulation(&cfg, queries).unwrap();
        prop_assert!(r.is_conserved(1e-12));
        let stats = r.cache_stats.unwrap();
        prop_assert_eq!(stats.lookups(), queries);
        prop_assert_eq!(stats.hits() as f64, r.cache_load);
        prop_assert_eq!(r.snapshot.total(), (queries - stats.hits()) as f64);
    }

    #[test]
    fn prop_bigger_cache_never_increases_backend_load(
        cfg in arb_config(),
        extra in 1usize..40,
    ) {
        let small = run_rate_simulation(&cfg).unwrap();
        let mut bigger = cfg.clone();
        bigger.cache_capacity = (cfg.cache_capacity + extra).min(cfg.items as usize);
        let big = run_rate_simulation(&bigger).unwrap();
        prop_assert!(
            big.snapshot.total() <= small.snapshot.total() + 1e-9,
            "more cache increased backend load: {} -> {}",
            small.snapshot.total(),
            big.snapshot.total()
        );
    }
}
