//! The `scp-analyze` command-line interface.
//!
//! ```text
//! scp-analyze [--root DIR] [--deny] [--check-baseline] [--update-baseline]
//!             [--json PATH|-] [--verbose]
//! ```
//!
//! Exit codes: `0` clean, `1` gate failure (`--deny` violations or
//! `--check-baseline` drift), `2` usage or I/O error.

use scp_analyze::baseline::BASELINE_FILE;
use scp_analyze::files::find_workspace_root;
use scp_analyze::surface::{DET_SURFACE_FILE, SURFACE_FILE};
use scp_analyze::{analyze_all, store_baseline, store_det_surface, store_surface};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: Option<PathBuf>,
    deny: bool,
    check_baseline: bool,
    update_baseline: bool,
    json: Option<String>,
    verbose: bool,
}

const USAGE: &str = "usage: scp-analyze [--root DIR] [--deny] [--check-baseline] \
[--update-baseline] [--json PATH|-] [--verbose]";

fn parse_opts(mut args: impl Iterator<Item = String>) -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        deny: false,
        check_baseline: false,
        update_baseline: false,
        json: None,
        verbose: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--deny" => opts.deny = true,
            "--check-baseline" => opts.check_baseline = true,
            "--update-baseline" => opts.update_baseline = true,
            "--json" => {
                opts.json = Some(args.next().ok_or("--json needs a path (or `-`)")?);
            }
            "--verbose" | "-v" => opts.verbose = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let start = opts.root.clone().unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = find_workspace_root(&start) else {
        eprintln!(
            "scp-analyze: no workspace Cargo.toml found above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    let analysis = match analyze_all(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scp-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let report = analysis.report;
    let surface = analysis.panic_surface;
    let det = analysis.det_surface;

    if opts.update_baseline {
        if let Err(e) = store_baseline(&root, &report.observed) {
            eprintln!("scp-analyze: writing {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "scp-analyze: wrote {} ({} files with ratcheted debt)",
            BASELINE_FILE,
            report.observed.counts.len()
        );
        if let Err(e) = store_surface(&root, &surface) {
            eprintln!("scp-analyze: writing {SURFACE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "scp-analyze: wrote {} ({} panic-reachable pub fns)",
            SURFACE_FILE,
            surface.observed.functions.len()
        );
        if let Err(e) = store_det_surface(&root, &det) {
            eprintln!("scp-analyze: writing {DET_SURFACE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "scp-analyze: wrote {} ({} taint-reachable pub fns)",
            DET_SURFACE_FILE,
            det.observed.functions.len()
        );
        // Violations of deny rules still gate below even after an update.
    }

    match opts.json.as_deref() {
        Some("-") => println!("{}", report.render_json().to_pretty_string()),
        Some(path) => {
            if let Err(e) = std::fs::write(path, report.render_json().to_pretty_string()) {
                eprintln!("scp-analyze: writing {path}: {e}");
                return ExitCode::from(2);
            }
            print!("{}", report.render_human(opts.verbose));
        }
        None => print!("{}", report.render_human(opts.verbose)),
    }

    // Keep stdout pure JSON under `--json -`.
    if opts.json.as_deref() != Some("-") {
        println!(
            "panic surface: {} of {} pub fns reach a panic site ({} fns, {} edges in the call graph)",
            surface.observed.functions.len(),
            surface.per_crate.values().map(|c| c.pub_fns).sum::<u64>(),
            surface.fn_count,
            surface.edge_count,
        );
        if opts.verbose {
            for (name, c) in &surface.per_crate {
                println!(
                    "  {:28} {:3} reachable / {:3} pub",
                    name, c.reachable, c.pub_fns
                );
            }
        }
        for id in &surface.added {
            println!("  entered the panic surface: {id}");
        }
        for id in &surface.removed {
            println!("  left the panic surface (re-lock with --update-baseline): {id}");
        }
        println!(
            "determinism surface: {} of {} pub fns reachable by nondeterminism",
            det.observed.functions.len(),
            det.per_crate.values().map(|c| c.pub_fns).sum::<u64>(),
        );
        if opts.verbose {
            for (name, c) in &det.per_crate {
                println!(
                    "  {:28} {:3} tainted   / {:3} pub",
                    name, c.reachable, c.pub_fns
                );
            }
        }
        // Entries into the determinism surface already gate through
        // `--deny` as `nondet-taint` findings; only drift is reported
        // here.
        for id in &det.removed {
            println!("  left the determinism surface (re-lock with --update-baseline): {id}");
        }
    }

    let mut failed = false;
    if opts.deny && !report.deny_clean() {
        eprintln!(
            "scp-analyze: --deny: {} violation(s)",
            report.violations.len()
        );
        failed = true;
    }
    if opts.deny && !opts.update_baseline && !surface.no_regressions() {
        eprintln!(
            "scp-analyze: --deny: {} pub fn(s) entered the panic surface",
            surface.added.len()
        );
        failed = true;
    }
    if opts.check_baseline && !opts.update_baseline && !report.baseline_in_sync() {
        eprintln!(
            "scp-analyze: --check-baseline: {BASELINE_FILE} out of sync ({} difference(s))",
            report.baseline_diff.len()
        );
        failed = true;
    }
    if opts.check_baseline && !opts.update_baseline && !surface.in_sync() {
        eprintln!(
            "scp-analyze: --check-baseline: {SURFACE_FILE} out of sync ({} difference(s))",
            surface.added.len() + surface.removed.len()
        );
        failed = true;
    }
    if opts.check_baseline && !opts.update_baseline && !det.in_sync() {
        eprintln!(
            "scp-analyze: --check-baseline: {DET_SURFACE_FILE} out of sync ({} difference(s))",
            det.added.len() + det.removed.len()
        );
        failed = true;
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
