//! `scp-allow` suppression pragmas.
//!
//! A finding can be silenced — with a mandatory human-readable reason — by
//! a comment of the form:
//!
//! ```text
//! some_code(); // scp-allow(rule-name): why this occurrence is sound
//! ```
//!
//! or, on its own line, applying to the next line that contains code:
//!
//! ```text
//! // scp-allow(rule-name): why this occurrence is sound
//! some_code();
//! ```
//!
//! Pragmas are parsed from the *comment mask*, so the marker can never be
//! smuggled in through a string literal, and only from plain `//` comments
//! — doc comments (`///`, `//!`) are documentation, not directives, so
//! prose like this paragraph can mention the marker freely. A pragma with
//! an unknown rule name or a missing reason is itself reported
//! (`invalid-pragma`), and a pragma that suppresses nothing is reported
//! too (`unused-allow`), so stale annotations cannot accumulate.

use crate::files::SourceFile;
use crate::syntax::{sub, tail};

/// The marker looked for inside comments.
pub const MARKER: &str = "scp-allow(";

/// The marker that cuts nondeterminism-taint propagation (see
/// [`crate::taint`]). Unlike `scp-allow`, which targets a *line*, a
/// `// DETERMINISM: <reason>` comment marks the innermost function that
/// lexically contains it as a justified laundering point: taint seeded
/// inside it, or flowing into it through calls, does not propagate to its
/// callers, and the function itself stays out of the determinism surface.
pub const DETERMINISM_MARKER: &str = "DETERMINISM:";

/// One parsed `DETERMINISM:` laundering pragma.
#[derive(Debug, Clone)]
pub struct DeterminismPragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// Mandatory justification (non-empty).
    pub reason: String,
}

/// Extracts all `// DETERMINISM: <reason>` pragmas from a file's comment
/// mask. Same discipline as [`parse_pragmas`]: only plain `//` comments
/// count (doc comments are prose), the marker cannot be smuggled in
/// through a string literal, and pragmas inside test code are ignored.
/// The comment's content must *start* with the marker so ordinary prose
/// mentioning determinism never parses as a directive.
pub fn parse_determinism(file: &SourceFile) -> (Vec<DeterminismPragma>, Vec<PragmaError>) {
    let comment_lines = file.masked.comment_lines();
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for (idx, comment) in comment_lines.iter().enumerate() {
        let line = idx + 1;
        if file.is_test_line(line) {
            continue;
        }
        let trimmed = comment.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") || trimmed.starts_with("/**") {
            continue;
        }
        let Some(content) = trimmed.strip_prefix("//") else {
            continue;
        };
        let Some(rest) = content.trim_start().strip_prefix(DETERMINISM_MARKER) else {
            continue;
        };
        let reason = rest.trim();
        if reason.is_empty() {
            errors.push(PragmaError {
                line,
                message: "DETERMINISM: needs a non-empty reason".to_owned(),
            });
            continue;
        }
        pragmas.push(DeterminismPragma {
            line,
            reason: reason.to_owned(),
        });
    }
    (pragmas, errors)
}

/// One parsed suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// 1-based line the pragma applies to.
    pub target_line: usize,
    /// Rule it suppresses.
    pub rule: String,
    /// Mandatory justification (non-empty).
    pub reason: String,
}

/// A malformed pragma occurrence.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// 1-based line of the broken pragma.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts all pragmas from a file's comment mask.
///
/// `known_rules` drives unknown-name validation. Pragmas inside test code
/// are ignored entirely (rules do not fire there, so a pragma would always
/// be unused noise).
pub fn parse_pragmas(file: &SourceFile, known_rules: &[&str]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let comment_lines = file.masked.comment_lines();
    let code_lines = file.masked.code_lines();
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();

    for (idx, comment) in comment_lines.iter().enumerate() {
        let line = idx + 1;
        if file.is_test_line(line) {
            continue;
        }
        let trimmed = comment.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") || trimmed.starts_with("/**") {
            continue;
        }
        let Some(pos) = comment.find(MARKER) else {
            continue;
        };
        let after = tail(comment, pos + MARKER.len());
        let Some(close) = after.find(')') else {
            errors.push(PragmaError {
                line,
                message: "unterminated scp-allow(: missing `)`".to_owned(),
            });
            continue;
        };
        let rule = sub(after, 0, close).trim().to_owned();
        let rest = tail(after, close + 1).trim_start();
        if !known_rules.contains(&rule.as_str()) {
            errors.push(PragmaError {
                line,
                message: format!("unknown rule `{rule}` in scp-allow"),
            });
            continue;
        }
        let Some(reason) = rest.strip_prefix(':').map(str::trim) else {
            errors.push(PragmaError {
                line,
                message: "scp-allow needs `: <reason>` after the rule name".to_owned(),
            });
            continue;
        };
        if reason.is_empty() {
            errors.push(PragmaError {
                line,
                message: "scp-allow reason must not be empty".to_owned(),
            });
            continue;
        }
        let target_line = if code_lines.get(idx).is_some_and(|c| !c.trim().is_empty()) {
            line
        } else {
            // Comment-only line: applies to the next line containing code.
            let mut t = idx + 1;
            while code_lines.get(t).is_some_and(|c| c.trim().is_empty()) {
                t += 1;
            }
            t + 1
        };
        pragmas.push(Pragma {
            line,
            target_line,
            rule,
            reason: reason.to_owned(),
        });
    }
    (pragmas, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::{FileKind, SourceFile};
    use crate::lexer::mask;

    const RULES: &[&str] = &["panic-path", "float-eq"];

    fn file(src: &str) -> SourceFile {
        let masked = mask(src);
        SourceFile {
            rel_path: "crates/x/src/lib.rs".into(),
            crate_name: "scp-x".into(),
            kind: FileKind::Library,
            in_test: vec![false; masked.code.lines().count()],
            masked,
            lines: src.lines().map(str::to_owned).collect(),
        }
    }

    #[test]
    fn same_line_pragma_targets_itself() {
        let (p, e) = parse_pragmas(
            &file("x.unwrap(); // scp-allow(panic-path): invariant holds\n"),
            RULES,
        );
        assert!(e.is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].target_line, 1);
        assert_eq!(p[0].rule, "panic-path");
        assert_eq!(p[0].reason, "invariant holds");
    }

    #[test]
    fn standalone_pragma_targets_next_code_line() {
        let src = "// scp-allow(float-eq): exact by construction\n\n// another comment\nlet ok = a == 1.0;\n";
        let (p, e) = parse_pragmas(&file(src), RULES);
        assert!(e.is_empty());
        assert_eq!(p[0].target_line, 4);
    }

    #[test]
    fn unknown_rule_and_missing_reason_are_errors() {
        let src = "// scp-allow(no-such-rule): x\nlet a = 1;\n// scp-allow(panic-path)\nlet b = 2;\n// scp-allow(panic-path):   \nlet c = 3;\n";
        let (p, e) = parse_pragmas(&file(src), RULES);
        assert!(p.is_empty());
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn pragma_in_string_is_ignored() {
        let src = "let s = \"// scp-allow(panic-path): nope\";\n";
        let (p, e) = parse_pragmas(&file(src), RULES);
        assert!(p.is_empty() && e.is_empty());
    }
}
