//! An intra-workspace call graph over the [`crate::syntax`] item trees.
//!
//! The graph exists for two consumers — the panic-surface report and the
//! determinism-surface report ([`crate::surface`], [`crate::taint`]) — so
//! its design goal is *sound reachability*, not precise name resolution:
//! when a call site could plausibly target a workspace function, the edge
//! is added. Overapproximation makes the surfaces larger, never smaller,
//! which is the safe direction for ratchets that only allow a surface to
//! shrink.
//!
//! Resolution is name-based and deterministic:
//!
//! * `name(...)` — a free call: candidates are functions named `name` in
//!   the same file, else the same crate, else any crate the file imports
//!   (via its `use` graph);
//! * `Type::name(...)` — a qualified call: candidates are functions whose
//!   qualified name ends in `Type::name` anywhere in the workspace, with
//!   the free-call fallback when the pair is unknown (e.g. the `Type`
//!   segment was a module name);
//! * `.name(...)` — a method call: candidates are functions named `name`
//!   in the same crate or an imported crate, *except* names on the
//!   [`CALL_NAME_NOISE`] list (ubiquitous `std` method names like `len`,
//!   `push`, `get` whose receiver is almost always a standard type —
//!   linking those would connect everything to everything). When the
//!   surviving candidates include `impl`-associated methods owned by
//!   exactly one type, the free functions and trait declarations sharing
//!   the name are dropped: a `.name(...)` call must dispatch to *some*
//!   inherent or trait impl, and with a single implementing type in scope
//!   that impl is the only possible target.
//!
//! Test code is excluded entirely (functions *and* call sites): the
//! surface describes what shipping code can reach, and a test helper can
//! never be called from a non-test path.

use crate::files::{FileKind, SourceFile};
use crate::pragma;
use crate::rules;
use crate::syntax;
use crate::syntax::{at, sub};
use crate::taint;
use std::collections::{BTreeMap, BTreeSet};

/// One function node of the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Stable identifier: `rel_path::qualified_name`, e.g.
    /// `crates/serve/src/spsc.rs::Producer::try_push`.
    pub id: String,
    /// Bare function name (last path segment).
    pub name: String,
    /// Crate the function belongs to (e.g. `scp-serve`).
    pub crate_name: String,
    /// Workspace-relative path of the defining file.
    pub rel_path: String,
    /// Whether the function carries a `pub` modifier.
    pub is_pub: bool,
    /// Nearest enclosing `impl`/`trait` name when the fn is associated.
    pub owner: Option<String>,
    /// Whether [`FnNode::owner`] is an `impl` (a concrete type) rather
    /// than a `trait` declaration.
    pub owner_is_impl: bool,
    /// 1-based line the declaration starts on.
    pub decl_line: usize,
    /// Number of panic-capable sites (`panic-path` / `slice-index`
    /// findings, pre-suppression) lexically inside this function.
    pub local_sites: usize,
    /// Whether the function can transitively reach a panic-capable site
    /// (including its own).
    pub reaches_panic: bool,
    /// Number of nondeterminism source sites
    /// ([`rules::taint_site_lines`]) lexically inside this function.
    pub taint_sites: usize,
    /// First local source site, as `(line, what)` — used by taint traces.
    pub first_taint: Option<(usize, String)>,
    /// Whether a `// DETERMINISM: <reason>` pragma inside this function
    /// marks it as a justified laundering point (see [`crate::taint`]).
    pub launders: bool,
    /// Lines of the `DETERMINISM:` pragmas inside this function.
    pub launder_lines: Vec<usize>,
    /// Whether nondeterminism can transitively reach this function's
    /// results (see [`crate::taint`]).
    pub tainted: bool,
    /// Indices (into [`CallGraph::fns`]) of resolved callees.
    pub callees: Vec<usize>,
}

/// The assembled workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions from library/binary files, in deterministic
    /// (path, source) order.
    pub fns: Vec<FnNode>,
    /// Total resolved call edges.
    pub edge_count: usize,
    /// Hygiene findings for `DETERMINISM:` pragmas (`invalid-pragma` for
    /// a missing reason or a pragma outside any function, `unused-allow`
    /// for a pragma that launders nothing), raw/pre-suppression.
    pub determinism_findings: Vec<rules::Finding>,
}

/// Method-call names so common on `std` types that linking them by name
/// would wire the whole workspace together. Calls through these names are
/// not resolved; a workspace method that shadows one of them simply
/// contributes no *incoming* method-call edges (its qualified calls still
/// resolve).
const CALL_NAME_NOISE: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "expect_err",
    "extend",
    "exp",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "load",
    "log2",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "new",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "position",
    "pow",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "pop",
    "remove",
    "repeat",
    "replace",
    "resize",
    "retain",
    "rev",
    "reverse",
    "rfind",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_into",
    "unwrap",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "zip",
];

/// Keywords and call-like constructs that look like `ident(` but are not
/// function calls.
const NON_CALL_WORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "use", "pub", "impl", "where", "unsafe", "async", "await",
    "dyn", "box", "Some", "Ok", "Err", "None",
];

/// Builds the call graph from classified sources, computing panic
/// reachability for every node.
pub fn build(sources: &[SourceFile]) -> CallGraph {
    let mut graph = CallGraph::default();
    // Per-file parse results and per-fn metadata, gathered first so the
    // name indices cover the whole workspace before resolution starts.
    let mut file_fn_ranges: Vec<(usize, usize)> = Vec::new(); // fn index range per file
    let mut parsed_files: Vec<Option<syntax::ParsedFile>> = Vec::new();

    for file in sources {
        let lo = graph.fns.len();
        if !matches!(file.kind, FileKind::Library | FileKind::Binary) {
            parsed_files.push(None);
            file_fn_ranges.push((lo, lo));
            continue;
        }
        let parsed = syntax::parse(&file.masked);
        let panic_lines = rules::panic_site_lines(file);
        let fn_of_line = innermost_fn_of_line(&parsed.fns, file.masked.code.lines().count());
        // Count panic sites per innermost enclosing fn.
        let mut sites_per_fn = vec![0usize; parsed.fns.len()];
        for &lineno in &panic_lines {
            if let Some(Some(fi)) = fn_of_line.get(lineno.saturating_sub(1)) {
                if let Some(n) = sites_per_fn.get_mut(*fi) {
                    *n += 1;
                }
            }
        }
        // Count nondeterminism sources per innermost enclosing fn and
        // remember the first one for taint traces.
        let mut taint_per_fn = vec![0usize; parsed.fns.len()];
        let mut first_taint: Vec<Option<(usize, String)>> = vec![None; parsed.fns.len()];
        for site in rules::taint_site_lines(file) {
            if let Some(Some(fi)) = fn_of_line.get(site.line.saturating_sub(1)) {
                if let Some(n) = taint_per_fn.get_mut(*fi) {
                    *n += 1;
                }
                if let Some(slot) = first_taint.get_mut(*fi) {
                    if slot.is_none() {
                        *slot = Some((site.line, site.what));
                    }
                }
            }
        }
        // Map `DETERMINISM:` pragmas onto their innermost fn; a pragma
        // outside every function has nothing to launder and is invalid.
        let (det_pragmas, det_errors) = pragma::parse_determinism(file);
        let mut launder_lines_per_fn: Vec<Vec<usize>> = vec![Vec::new(); parsed.fns.len()];
        for p in det_pragmas {
            match fn_of_line.get(p.line.saturating_sub(1)) {
                Some(Some(fi)) => {
                    if let Some(lines) = launder_lines_per_fn.get_mut(*fi) {
                        lines.push(p.line);
                    }
                }
                _ => graph.determinism_findings.push(rules::Finding {
                    file: file.rel_path.clone(),
                    line: p.line,
                    rule: "invalid-pragma",
                    message: "DETERMINISM: pragma outside any function has nothing to launder"
                        .to_owned(),
                    snippet: snippet_at(file, p.line),
                    suppressed: false,
                }),
            }
        }
        for e in det_errors {
            graph.determinism_findings.push(rules::Finding {
                file: file.rel_path.clone(),
                line: e.line,
                rule: "invalid-pragma",
                message: e.message,
                snippet: snippet_at(file, e.line),
                suppressed: false,
            });
        }
        for (fi, f) in parsed.fns.iter().enumerate() {
            if f.cfg_test {
                continue;
            }
            let launder_lines = launder_lines_per_fn.get(fi).cloned().unwrap_or_default();
            graph.fns.push(FnNode {
                id: format!("{}::{}", file.rel_path, f.qualified),
                name: f.name.clone(),
                crate_name: file.crate_name.clone(),
                rel_path: file.rel_path.clone(),
                is_pub: f.is_pub,
                owner: f.owner.clone(),
                owner_is_impl: f.owner_is_impl,
                decl_line: f.lines.0,
                local_sites: sites_per_fn.get(fi).copied().unwrap_or(0),
                reaches_panic: false,
                taint_sites: taint_per_fn.get(fi).copied().unwrap_or(0),
                first_taint: first_taint.get_mut(fi).and_then(Option::take),
                launders: !launder_lines.is_empty(),
                launder_lines,
                tainted: false,
                callees: Vec::new(),
            });
        }
        parsed_files.push(Some(parsed));
        file_fn_ranges.push((lo, graph.fns.len()));
    }

    let index = NameIndex::build(&graph.fns);

    // Second pass: extract call sites per file line, attribute each to its
    // innermost non-test fn, and resolve.
    for ((file, parsed), &(lo, hi)) in sources.iter().zip(&parsed_files).zip(&file_fn_ranges) {
        let Some(parsed) = parsed else {
            continue;
        };
        if lo == hi {
            continue;
        }
        // Map parsed-fn index -> graph node index (test fns were skipped).
        let mut node_of: Vec<Option<usize>> = Vec::with_capacity(parsed.fns.len());
        let mut next = lo;
        for f in &parsed.fns {
            if f.cfg_test {
                node_of.push(None);
            } else {
                node_of.push(Some(next));
                next += 1;
            }
        }
        let imported = imported_crates(&parsed.uses, &file.crate_name);
        let code_lines = file.masked.code_lines();
        let fn_of_line = innermost_fn_of_line(&parsed.fns, code_lines.len());
        for (idx, line) in code_lines.iter().enumerate() {
            let Some(Some(fi)) = fn_of_line.get(idx) else {
                continue;
            };
            let Some(Some(node)) = node_of.get(*fi).copied() else {
                continue;
            };
            let Some(caller) = graph.fns.get(node) else {
                continue;
            };
            let mut targets = Vec::new();
            for call in extract_calls(line) {
                targets.extend(index.resolve(&call, &graph.fns, caller, &imported));
            }
            let mut new_edges = 0usize;
            if let Some(n) = graph.fns.get_mut(node) {
                for target in targets {
                    if target != node && !n.callees.contains(&target) {
                        n.callees.push(target);
                        new_edges += 1;
                    }
                }
            }
            graph.edge_count += new_edges;
        }
    }

    propagate_reachability(&mut graph);
    taint::propagate(&mut graph);

    // A `DETERMINISM:` pragma that launders nothing — no local source
    // site and no tainted callee — is stale and must be removed, exactly
    // like an unused `scp-allow`.
    let mut unused: Vec<(String, usize)> = Vec::new();
    for f in &graph.fns {
        if !f.launders {
            continue;
        }
        let any_tainted_callee = f
            .callees
            .iter()
            .any(|&c| graph.fns.get(c).is_some_and(|cf| cf.tainted));
        if f.taint_sites == 0 && !any_tainted_callee {
            for &line in &f.launder_lines {
                unused.push((f.rel_path.clone(), line));
            }
        }
    }
    for (rel_path, line) in unused {
        let snippet = sources
            .iter()
            .find(|s| s.rel_path == rel_path)
            .map(|s| snippet_at(s, line))
            .unwrap_or_default();
        graph.determinism_findings.push(rules::Finding {
            file: rel_path,
            line,
            rule: "unused-allow",
            message: "DETERMINISM: pragma launders nothing (no nondeterminism reaches this \
                      function) — remove it"
                .to_owned(),
            snippet,
            suppressed: false,
        });
    }
    graph
}

/// Trimmed source text of a 1-based line, for finding snippets.
fn snippet_at(file: &SourceFile, line: usize) -> String {
    file.lines
        .get(line.saturating_sub(1))
        .map(|l| l.trim().to_owned())
        .unwrap_or_default()
}

/// For each 0-based line, the index (into `fns`) of the innermost
/// function whose line span covers it. Functions appear in pre-order, so
/// later (nested) spans overwrite their ancestors'.
fn innermost_fn_of_line(fns: &[syntax::FnItem], n_lines: usize) -> Vec<Option<usize>> {
    let mut map = vec![None; n_lines];
    for (fi, f) in fns.iter().enumerate() {
        let (first, last) = f.lines;
        for slot in map
            .iter_mut()
            .take(last.min(n_lines))
            .skip(first.saturating_sub(1))
        {
            *slot = Some(fi);
        }
    }
    map
}

/// One syntactic call site.
#[derive(Debug, PartialEq)]
enum Call {
    /// `name(...)` with no receiver.
    Free(String),
    /// `Prefix::name(...)`.
    Qualified(String, String),
    /// `.name(...)`.
    Method(String),
}

/// Extracts call sites from one code-mask line: identifiers directly
/// followed by `(`, classified by what precedes them. Macros (`name!`)
/// are skipped — panic-capable macros are already counted as sites by the
/// line rules.
fn extract_calls(line: &str) -> Vec<Call> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if !is_ident_start(at(bytes, i)) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident(at(bytes, i)) {
            i += 1;
        }
        let word = sub(line, start, i);
        // Next non-space byte must open a call.
        let mut j = i;
        while j < bytes.len() && at(bytes, j) == b' ' {
            j += 1;
        }
        if at(bytes, j) != b'(' {
            continue;
        }
        if NON_CALL_WORDS.contains(&word) {
            continue;
        }
        // Numeric-leading tokens can't be fn names.
        if at(bytes, start).is_ascii_digit() {
            continue;
        }
        let before = bytes.get(..start).unwrap_or(&[]);
        // `fn name(` is the definition, not a call on itself.
        if prev_word_is(before, b"fn") {
            continue;
        }
        if ends_with(before, b".") {
            out.push(Call::Method(word.to_owned()));
        } else if ends_with(before, b"::") {
            // Walk back over the preceding path segment.
            let seg_end = start.saturating_sub(2);
            let mut seg_start = seg_end;
            while seg_start > 0 && is_ident(at(bytes, seg_start - 1)) {
                seg_start -= 1;
            }
            if seg_start < seg_end {
                out.push(Call::Qualified(
                    sub(line, seg_start, seg_end).to_owned(),
                    word.to_owned(),
                ));
            } else {
                out.push(Call::Free(word.to_owned()));
            }
        } else {
            out.push(Call::Free(word.to_owned()));
        }
    }
    out
}

fn ends_with(bytes: &[u8], suffix: &[u8]) -> bool {
    // Skip trailing spaces between the token and its qualifier.
    let mut end = bytes.len();
    while end > 0 && at(bytes, end - 1) == b' ' {
        end -= 1;
    }
    end >= suffix.len() && bytes.get(end - suffix.len()..end) == Some(suffix)
}

/// Whether the last word before trailing spaces is exactly `word`.
fn prev_word_is(bytes: &[u8], word: &[u8]) -> bool {
    let mut end = bytes.len();
    while end > 0 && at(bytes, end - 1) == b' ' {
        end -= 1;
    }
    if end < word.len() || bytes.get(end - word.len()..end) != Some(word) {
        return false;
    }
    let word_at = end - word.len();
    word_at == 0 || !is_ident(at(bytes, word_at - 1))
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// Name-to-node lookup tables.
struct NameIndex {
    /// Bare name -> node indices, workspace-wide.
    by_name: BTreeMap<String, Vec<usize>>,
    /// (`Type`, `name`) from the last two qualified segments -> nodes.
    by_pair: BTreeMap<(String, String), Vec<usize>>,
}

impl NameIndex {
    fn build(fns: &[FnNode]) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_pair: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            let mut segs = f.id.rsplit("::");
            if let (Some(last), Some(second_last)) = (segs.next(), segs.next()) {
                by_pair
                    .entry((second_last.to_owned(), last.to_owned()))
                    .or_default()
                    .push(i);
            }
        }
        Self { by_name, by_pair }
    }

    /// Deterministic candidate set for one call from `caller`; `fns` is
    /// the node vector the index was built over.
    fn resolve(
        &self,
        call: &Call,
        fns: &[FnNode],
        caller: &FnNode,
        imported: &BTreeSet<String>,
    ) -> Vec<usize> {
        let all = |name: &str| {
            self.by_name
                .get(name)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .to_vec()
        };
        let in_scope = |i: &usize| {
            fns.get(*i).is_some_and(|f| {
                f.crate_name == caller.crate_name || imported.contains(&f.crate_name)
            })
        };
        match call {
            Call::Free(name) => {
                let candidates = all(name);
                let same_file: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| fns.get(i).is_some_and(|f| f.rel_path == caller.rel_path))
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let same_crate: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        fns.get(i)
                            .is_some_and(|f| f.crate_name == caller.crate_name)
                    })
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                candidates.into_iter().filter(|i| in_scope(i)).collect()
            }
            Call::Qualified(prefix, name) => {
                // `Self::f(...)` names the caller's own impl type: swap in
                // that type (second-to-last id segment) so the pair lookup
                // stays precise instead of falling back workspace-wide.
                let prefix = if prefix == "Self" {
                    let mut segs = caller.id.rsplit("::");
                    segs.next();
                    match segs.next() {
                        Some(ty) if !ty.ends_with(".rs") => ty,
                        _ => prefix.as_str(),
                    }
                } else {
                    prefix.as_str()
                };
                if let Some(hits) = self.by_pair.get(&(prefix.to_owned(), name.clone())) {
                    return hits.clone();
                }
                // Unknown pair: the prefix was probably a module, or a
                // `std` type. Fall back to crate-scoped name resolution so
                // `bounds::upper_bound(...)` still links, while
                // `String::from(...)` links only if a workspace `from`
                // exists in scope. Noise names are excluded here too —
                // `Arc::new(...)` or `AtomicBool::new(...)` on a `std`
                // type must not link to every workspace constructor.
                if CALL_NAME_NOISE.contains(&name.as_str()) {
                    return Vec::new();
                }
                all(name).into_iter().filter(|i| in_scope(i)).collect()
            }
            Call::Method(name) => {
                if CALL_NAME_NOISE.contains(&name.as_str()) {
                    return Vec::new();
                }
                let candidates: Vec<usize> =
                    all(name).into_iter().filter(|i| in_scope(i)).collect();
                // A method call dispatches to an impl. When the in-scope
                // candidates include impl-associated methods owned by
                // exactly one type, that impl is the only possible target:
                // drop same-named free fns and trait declarations. With
                // zero impl candidates (or several owner types) keep the
                // full over-approximate set.
                let impl_owners: BTreeSet<&str> = candidates
                    .iter()
                    .filter_map(|&i| fns.get(i))
                    .filter(|f| f.owner_is_impl)
                    .filter_map(|f| f.owner.as_deref())
                    .collect();
                if impl_owners.len() == 1 {
                    return candidates
                        .into_iter()
                        .filter(|&i| fns.get(i).is_some_and(|f| f.owner_is_impl))
                        .collect();
                }
                candidates
            }
        }
    }
}

/// Crates a file's `use` declarations bring into scope, plus its own.
fn imported_crates(uses: &[syntax::UseDecl], own: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    out.insert(own.to_owned());
    for u in uses {
        if let Some(head) = u.path.first() {
            if let Some(crate_name) = crate_of_import(head) {
                out.insert(crate_name);
            }
        }
    }
    out
}

/// Maps a `use` path head to a workspace crate name.
fn crate_of_import(head: &str) -> Option<String> {
    if head == "secure_cache_provision" {
        return Some("secure-cache-provision".to_owned());
    }
    head.strip_prefix("scp_").map(|rest| format!("scp-{rest}"))
}

/// Fixed-point reachability: a node reaches panic if it has local sites
/// or any callee reaches panic.
fn propagate_reachability(graph: &mut CallGraph) {
    // Reverse edges, then BFS from every panic-bearing node.
    let n = graph.fns.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, f) in graph.fns.iter().enumerate() {
        for &c in &f.callees {
            if let Some(r) = rev.get_mut(c) {
                r.push(i);
            }
        }
    }
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in graph.fns.iter_mut().enumerate() {
        if f.local_sites > 0 {
            f.reaches_panic = true;
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        for &caller in rev.get(i).map(Vec::as_slice).unwrap_or(&[]) {
            if let Some(f) = graph.fns.get_mut(caller) {
                if !f.reaches_panic {
                    f.reaches_panic = true;
                    queue.push(caller);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, text)| SourceFile::from_source(path, text))
            .collect();
        build(&sources)
    }

    fn node<'a>(g: &'a CallGraph, id: &str) -> &'a FnNode {
        g.fns
            .iter()
            .find(|f| f.id.ends_with(id))
            .unwrap_or_else(|| panic!("no node ending in {id}"))
    }

    #[test]
    fn local_panic_site_marks_fn_and_direct_caller() {
        let g = graph_of(&[(
            "crates/sim/src/g.rs",
            "pub fn outer() { inner(); }\n\
             fn inner() { maybe().unwrap(); }\n\
             fn maybe() -> Option<u64> { None }\n\
             pub fn clean() -> u64 { 1 }\n",
        )]);
        assert_eq!(node(&g, "::inner").local_sites, 1);
        assert!(node(&g, "::inner").reaches_panic);
        assert!(node(&g, "::outer").reaches_panic);
        assert!(!node(&g, "::clean").reaches_panic);
        assert!(!node(&g, "::maybe").reaches_panic);
    }

    #[test]
    fn qualified_calls_link_across_crates() {
        let g = graph_of(&[
            (
                "crates/cache/src/g.rs",
                "pub struct C;\nimpl C {\n    pub fn lookup(&self) -> u64 { self.raw[0] }\n}\n",
            ),
            (
                "crates/serve/src/g.rs",
                "use scp_cache::C;\npub fn serve(c: &C) -> u64 { C::lookup(c) }\n",
            ),
        ]);
        assert!(node(&g, "::C::lookup").reaches_panic, "slice-index site");
        assert!(node(&g, "::serve").reaches_panic, "links via Type::method");
    }

    #[test]
    fn method_calls_resolve_within_imported_crates_only() {
        let g = graph_of(&[
            (
                "crates/cache/src/g.rs",
                "pub struct C;\nimpl C {\n    pub fn shed(&self) { panic!(\"x\") }\n}\n",
            ),
            (
                "crates/serve/src/g.rs",
                "use scp_cache::C;\npub fn f(c: &C) { c.shed() }\n",
            ),
            ("crates/sim/src/g.rs", "pub fn unrelated() -> u64 { 1 }\n"),
        ]);
        assert!(node(&g, "::f").reaches_panic);
        assert!(!node(&g, "::unrelated").reaches_panic);
    }

    #[test]
    fn noisy_method_names_do_not_link() {
        let g = graph_of(&[(
            "crates/sim/src/g.rs",
            "pub struct S;\nimpl S {\n    pub fn len(&self) -> usize { self.raw[0] }\n}\n\
             pub fn uses_std_len(v: &[u64]) -> usize { v.len() }\n",
        )]);
        assert!(node(&g, "S::len").reaches_panic);
        assert!(
            !node(&g, "::uses_std_len").reaches_panic,
            "`.len()` must not link to the workspace `len`"
        );
    }

    #[test]
    fn test_fns_and_test_call_sites_are_excluded() {
        let g = graph_of(&[(
            "crates/sim/src/g.rs",
            "pub fn clean() -> u64 { 1 }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { x.unwrap(); }\n\
                 #[test]\n\
                 fn t() { helper(); super::clean(); }\n\
             }\n",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert!(!node(&g, "::clean").reaches_panic);
    }

    #[test]
    fn extraction_classifies_call_shapes() {
        let calls = extract_calls("a(); b.c(); D::e(); f::g(); h! (); 7(); if (x) {}");
        assert_eq!(
            calls,
            vec![
                Call::Free("a".into()),
                Call::Method("c".into()),
                Call::Qualified("D".into(), "e".into()),
                Call::Qualified("f".into(), "g".into()),
            ]
        );
    }

    #[test]
    fn free_calls_prefer_same_file_then_same_crate() {
        let g = graph_of(&[
            (
                "crates/sim/src/a.rs",
                "pub fn shared() { x.unwrap(); }\npub fn caller() { shared(); }\n",
            ),
            ("crates/sim/src/b.rs", "pub fn shared() -> u64 { 1 }\n"),
        ]);
        // caller links to a.rs's shared (panicking), not b.rs's clean one.
        assert!(node(&g, "a.rs::caller").reaches_panic);
        assert!(!node(&g, "b.rs::shared").reaches_panic);
    }

    #[test]
    fn cycles_terminate_and_propagate() {
        let g = graph_of(&[(
            "crates/sim/src/g.rs",
            "pub fn a(n: u64) { b(n); }\n\
             fn b(n: u64) { if n > 0 { a(n - 1); } c(); }\n\
             fn c() { x.expect(\"boom\"); }\n",
        )]);
        assert!(node(&g, "::a").reaches_panic);
        assert!(node(&g, "::b").reaches_panic);
    }
}
