//! A minimal Rust lexer that separates *code* from *non-code*.
//!
//! The analyzer's rules are textual, so the one job of this module is to
//! guarantee that a rule can never fire on text inside a comment, a string
//! literal, a raw string literal, a byte string or a char literal. It does
//! that by producing two byte-for-byte *masks* of the source:
//!
//! * [`MaskedSource::code`] — the original text with every comment and
//!   every literal *content* byte replaced by a space (literal delimiters
//!   such as the quotes themselves are kept, so code shape like
//!   `.expect("…")` survives as `.expect("   ")`);
//! * [`MaskedSource::comments`] — the complement: only comment text (with
//!   its `//` / `/* */` markers) survives, everything else is blanked.
//!
//! Newlines are preserved in both masks, so line numbers in the masks are
//! line numbers in the original file. Multi-byte UTF-8 characters never
//! straddle a mask boundary (all lexical delimiters are ASCII), so the
//! masks remain valid UTF-8.
//!
//! Handled constructs: line comments, nested block comments, string
//! literals with escapes, char/byte-char literals (disambiguated from
//! lifetimes), raw and raw-byte strings with arbitrary `#` counts.

/// The two complementary masks of one source file.
#[derive(Debug, Clone)]
pub struct MaskedSource {
    /// Source with comments and literal contents blanked.
    pub code: String,
    /// Source with everything but comments blanked.
    pub comments: String,
}

impl MaskedSource {
    /// Lines of the code mask (no trailing newlines).
    pub fn code_lines(&self) -> Vec<&str> {
        self.code.lines().collect()
    }

    /// Lines of the comment mask (no trailing newlines).
    pub fn comment_lines(&self) -> Vec<&str> {
        self.comments.lines().collect()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Region {
    Code,
    Comment,
    /// Literal *content*; delimiters are classified [`Region::Code`].
    Literal,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte at `i`, or `0` past the end — total, so scanning loops need no
/// panicking indexing.
fn byte_at(bytes: &[u8], i: usize) -> u8 {
    bytes.get(i).copied().unwrap_or(0)
}

/// Classifies byte `i`, ignoring out-of-range indices — total, so mask
/// writers need no panicking indexing.
fn set(region: &mut [Region], i: usize, r: Region) {
    if let Some(slot) = region.get_mut(i) {
        *slot = r;
    }
}

/// Masks one source file. Total: unterminated constructs simply run to the
/// end of input rather than erroring (the compiler owns syntax errors).
pub fn mask(src: &str) -> MaskedSource {
    let bytes = src.as_bytes();
    let mut region = vec![Region::Code; bytes.len()];
    let mut i = 0usize;
    while i < bytes.len() {
        let b = byte_at(bytes, i);
        // Line comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && byte_at(bytes, i) != b'\n' {
                set(&mut region, i, Region::Comment);
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if byte_at(bytes, i) == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    set(&mut region, i, Region::Comment);
                    set(&mut region, i + 1, Region::Comment);
                    i += 2;
                } else if byte_at(bytes, i) == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    set(&mut region, i, Region::Comment);
                    set(&mut region, i + 1, Region::Comment);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    set(&mut region, i, Region::Comment);
                    i += 1;
                }
            }
            continue;
        }
        // Possible raw / byte string prefix: (b|c)? r #* "  — only when the
        // prefix letter does not continue a longer identifier.
        let prev_ident = i > 0 && is_ident(byte_at(bytes, i - 1));
        if !prev_ident && (b == b'r' || b == b'b' || b == b'c') {
            if let Some(end) = try_raw_string(bytes, i) {
                // Keep the prefix and delimiters as code, blank the content.
                let open = raw_open_len(bytes, i);
                let hashes = open.1;
                let content_start = i + open.0;
                let content_end = end - 1 - hashes; // before closing quote
                for r in region.iter_mut().take(content_end).skip(content_start) {
                    *r = Region::Literal;
                }
                i = end;
                continue;
            }
            // Byte string b"..." or byte char b'...'.
            if b == b'b' || b == b'c' {
                match bytes.get(i + 1) {
                    Some(&b'"') => {
                        i = mask_string(bytes, &mut region, i + 1);
                        continue;
                    }
                    Some(&b'\'') if b == b'b' => {
                        i = mask_char(bytes, &mut region, i + 1);
                        continue;
                    }
                    _ => {}
                }
            }
        }
        if b == b'"' {
            i = mask_string(bytes, &mut region, i);
            continue;
        }
        if b == b'\'' && !prev_ident {
            i = mask_char(bytes, &mut region, i);
            continue;
        }
        i += 1;
    }

    let mut code = Vec::with_capacity(bytes.len());
    let mut comments = Vec::with_capacity(bytes.len());
    for (&b, &r) in bytes.iter().zip(&region) {
        if b == b'\n' || b == b'\r' {
            code.push(b);
            comments.push(b);
            continue;
        }
        match r {
            Region::Code => {
                code.push(b);
                comments.push(b' ');
            }
            Region::Comment => {
                code.push(b' ');
                comments.push(b);
            }
            Region::Literal => {
                code.push(b' ');
                comments.push(b' ');
            }
        }
    }
    // Masking only substitutes ASCII spaces for whole characters (all
    // delimiters are ASCII), so the masks stay valid UTF-8.
    MaskedSource {
        code: String::from_utf8(code).unwrap_or_default(),
        comments: String::from_utf8(comments).unwrap_or_default(),
    }
}

/// If a raw (byte/C) string starts at `i`, returns the index just past its
/// closing delimiter.
fn try_raw_string(bytes: &[u8], i: usize) -> Option<usize> {
    let (open_len, hashes) = raw_open_len_checked(bytes, i)?;
    let mut j = i + open_len;
    let closer_hashes = hashes;
    while j < bytes.len() {
        if byte_at(bytes, j) == b'"' {
            let mut k = 0usize;
            while k < closer_hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == closer_hashes {
                return Some(j + 1 + closer_hashes);
            }
        }
        j += 1;
    }
    Some(bytes.len())
}

/// `(prefix length through the opening quote, hash count)`, assuming
/// [`raw_open_len_checked`] already accepted the position.
fn raw_open_len(bytes: &[u8], i: usize) -> (usize, usize) {
    raw_open_len_checked(bytes, i).unwrap_or((1, 0))
}

fn raw_open_len_checked(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') || bytes.get(j) == Some(&b'c') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    Some((j + 1 - i, hashes))
}

/// Masks a normal string literal starting at the opening quote `start`;
/// returns the index just past the closing quote.
fn mask_string(bytes: &[u8], region: &mut [Region], start: usize) -> usize {
    let mut j = start + 1;
    while j < bytes.len() {
        match byte_at(bytes, j) {
            b'\\' => {
                set(region, j, Region::Literal);
                set(region, j + 1, Region::Literal);
                j += 2;
            }
            b'"' => return j + 1,
            _ => {
                set(region, j, Region::Literal);
                j += 1;
            }
        }
    }
    j
}

/// Masks a char (or byte-char) literal starting at the quote, or leaves a
/// lifetime untouched; returns the index to resume lexing from.
fn mask_char(bytes: &[u8], region: &mut [Region], start: usize) -> usize {
    let next = match bytes.get(start + 1) {
        Some(&b) => b,
        None => return start + 1,
    };
    if next == b'\\' {
        // Escaped char literal: blank until the closing quote.
        let mut j = start + 1;
        while j < bytes.len() && byte_at(bytes, j) != b'\'' {
            set(region, j, Region::Literal);
            if byte_at(bytes, j) == b'\\' {
                set(region, j + 1, Region::Literal);
                j += 1;
            }
            j += 1;
        }
        return (j + 1).min(bytes.len());
    }
    // One UTF-8 character, then a closing quote => char literal.
    let char_len = utf8_len(next);
    let close = start + 1 + char_len;
    if bytes.get(close) == Some(&b'\'') {
        for r in region.iter_mut().take(close).skip(start + 1) {
            *r = Region::Literal;
        }
        return close + 1;
    }
    // A lifetime (`'a`) — plain code; resume after the quote.
    start + 1
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        mask(src).code
    }

    fn comments_of(src: &str) -> String {
        mask(src).comments
    }

    #[test]
    fn line_comments_are_blanked_from_code() {
        let src = "let x = 1; // trailing .unwrap() note\n";
        let code = code_of(src);
        assert!(code.contains("let x = 1;"));
        assert!(!code.contains("unwrap"));
        assert!(comments_of(src).contains(".unwrap() note"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let code = code_of(src);
        assert!(code.starts_with('a'));
        assert!(code.ends_with('b'));
        assert!(!code.contains("inner"));
        assert!(!code.contains("still"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_kept() {
        let src = r#"call(".unwrap() // not a comment");"#;
        let code = code_of(src);
        assert!(!code.contains("unwrap"));
        assert!(!code.contains("//"));
        assert!(code.contains("call(\""));
        assert_eq!(comments_of(src).trim(), "");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"b.unwrap()"; let t = 1;"#;
        let code = code_of(src);
        assert!(!code.contains("unwrap"));
        assert!(code.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " and .unwrap() inside"#; done();"###;
        let code = code_of(src);
        assert!(!code.contains("unwrap"));
        assert!(code.contains("done();"));
    }

    #[test]
    fn raw_string_prefix_is_not_taken_from_identifier_tail() {
        // `har` ends in `r` but is an identifier, not a raw-string prefix.
        let src = "har\"x\"; next();";
        assert!(code_of(src).contains("next();"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"panic!(x)\"; let c = b'['; go();";
        let code = code_of(src);
        assert!(!code.contains("panic"));
        assert!(!code.contains('['));
        assert!(code.contains("go();"));
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'z'; g(x); }";
        let code = code_of(src);
        assert!(code.contains("fn f<'a>(x: &'a str)"));
        assert!(!code.contains('z'));
        // The quote char literal must not open a string that eats the rest.
        assert!(code.contains("g(x);"));
    }

    #[test]
    fn escaped_char_literal() {
        let src = r"let nl = '\n'; let u = '\u{1F600}'; h();";
        let code = code_of(src);
        assert!(code.contains("h();"));
        assert!(!code.contains("1F600"));
    }

    #[test]
    fn multibyte_characters_survive() {
        let src = "// é in a comment\nlet s = \"é\"; let café_x = 1;";
        let masked = mask(src);
        assert!(masked.code.contains("café_x"));
        assert!(masked.comments.contains('é'));
        assert_eq!(masked.code.lines().count(), src.lines().count());
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n/* two\nlines */\nb\n";
        let masked = mask(src);
        assert_eq!(masked.code.lines().count(), 4);
        assert_eq!(masked.comments.lines().count(), 4);
        assert_eq!(masked.code.lines().nth(3), Some("b"));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'"] {
            let _ = mask(src);
        }
    }
}
