//! The ratchet baseline: grandfathered debt that may only shrink.
//!
//! Ratcheted rules (`panic-path`, `slice-index`, `float-eq`) predate the
//! analyzer; hundreds of occurrences exist and converting them wholesale
//! would be churn, not safety. Instead, the committed
//! `analyze-baseline.json` records the current count per `(file, rule)`.
//! The gate then enforces a one-way ratchet:
//!
//! * a count **above** its baseline entry fails (new debt is rejected);
//! * a count **below** its entry passes the deny gate but fails
//!   `--check-baseline` until the file is regenerated with
//!   `--update-baseline` — so the committed ledger always matches reality
//!   and improvements are locked in by the very next commit.
//!
//! The file is written with `scp-json` (BTreeMap keys, sorted), so its
//! serialization is deterministic and diffs are minimal.

use scp_json::Json;
use std::collections::BTreeMap;

/// File name of the committed baseline, relative to the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.json";

/// Schema version written into the file.
pub const BASELINE_VERSION: u64 = 1;

/// Per-file, per-rule grandfathered counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `file -> rule -> allowed count` (entries are always > 0).
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// The allowed count for `(file, rule)` (0 when absent).
    pub fn allowed(&self, file: &str, rule: &str) -> u64 {
        self.counts
            .get(file)
            .and_then(|rules| rules.get(rule))
            .copied()
            .unwrap_or(0)
    }

    /// Builds a baseline from observed counts, dropping zero entries.
    pub fn from_counts(observed: &BTreeMap<String, BTreeMap<String, u64>>) -> Self {
        let mut counts = BTreeMap::new();
        for (file, rules) in observed {
            let nonzero: BTreeMap<String, u64> = rules
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(r, &n)| (r.clone(), n))
                .collect();
            if !nonzero.is_empty() {
                counts.insert(file.clone(), nonzero);
            }
        }
        Self { counts }
    }

    /// Serializes to the committed JSON form.
    pub fn to_json(&self) -> Json {
        let files: BTreeMap<String, Json> = self
            .counts
            .iter()
            .map(|(file, rules)| {
                let obj: BTreeMap<String, Json> = rules
                    .iter()
                    .map(|(r, &n)| (r.clone(), Json::Num(n as f64)))
                    .collect();
                (file.clone(), Json::Obj(obj))
            })
            .collect();
        Json::obj([
            ("version", Json::Num(BASELINE_VERSION as f64)),
            ("files", Json::Obj(files)),
        ])
    }

    /// Parses the committed JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Self, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        let version = json
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("baseline missing numeric `version`")?;
        if version != BASELINE_VERSION {
            return Err(format!(
                "baseline version {version} unsupported (expected {BASELINE_VERSION})"
            ));
        }
        let Some(Json::Obj(files)) = json.get("files") else {
            return Err("baseline missing `files` object".to_owned());
        };
        let mut counts = BTreeMap::new();
        for (file, rules) in files {
            let Json::Obj(rules) = rules else {
                return Err(format!("baseline entry for `{file}` is not an object"));
            };
            let mut per_rule = BTreeMap::new();
            for (rule, n) in rules {
                let n = n
                    .as_u64()
                    .ok_or_else(|| format!("baseline count for `{file}`/`{rule}` not a count"))?;
                if n > 0 {
                    per_rule.insert(rule.clone(), n);
                }
            }
            if !per_rule.is_empty() {
                counts.insert(file.clone(), per_rule);
            }
        }
        Ok(Self { counts })
    }

    /// Differences between this (committed) baseline and `current`
    /// (observed) counts, as human-readable lines. Empty means in sync.
    pub fn diff(&self, current: &Baseline) -> Vec<String> {
        let mut out = Vec::new();
        let empty = BTreeMap::new();
        let files: std::collections::BTreeSet<&String> =
            self.counts.keys().chain(current.counts.keys()).collect();
        for file in files {
            let old = self.counts.get(file.as_str()).unwrap_or(&empty);
            let new = current.counts.get(file.as_str()).unwrap_or(&empty);
            let rules: std::collections::BTreeSet<&String> = old.keys().chain(new.keys()).collect();
            for rule in rules {
                let o = old.get(rule.as_str()).copied().unwrap_or(0);
                let n = new.get(rule.as_str()).copied().unwrap_or(0);
                if o != n {
                    out.push(format!("{file}: {rule} baseline {o} -> observed {n}"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut counts = BTreeMap::new();
        let mut rules = BTreeMap::new();
        rules.insert("panic-path".to_owned(), 3u64);
        rules.insert("slice-index".to_owned(), 7u64);
        counts.insert("crates/x/src/lib.rs".to_owned(), rules);
        Baseline { counts }
    }

    #[test]
    fn roundtrips_through_json() {
        let b = sample();
        let text = b.to_json().to_pretty_string();
        let back = Baseline::parse(&text).expect("parse");
        assert_eq!(b, back);
    }

    #[test]
    fn allowed_defaults_to_zero() {
        let b = sample();
        assert_eq!(b.allowed("crates/x/src/lib.rs", "panic-path"), 3);
        assert_eq!(b.allowed("crates/x/src/lib.rs", "float-eq"), 0);
        assert_eq!(b.allowed("other.rs", "panic-path"), 0);
    }

    #[test]
    fn from_counts_drops_zeros() {
        let mut observed = BTreeMap::new();
        let mut rules = BTreeMap::new();
        rules.insert("panic-path".to_owned(), 0u64);
        observed.insert("crates/clean.rs".to_owned(), rules);
        let b = Baseline::from_counts(&observed);
        assert!(b.counts.is_empty());
    }

    #[test]
    fn diff_reports_both_directions() {
        let committed = sample();
        let mut observed = committed.counts.clone();
        if let Some(r) = observed.get_mut("crates/x/src/lib.rs") {
            r.insert("panic-path".to_owned(), 5);
        }
        let current = Baseline { counts: observed };
        let d = committed.diff(&current);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("baseline 3 -> observed 5"));
        assert!(committed.diff(&committed.clone()).is_empty());
    }

    #[test]
    fn rejects_bad_versions_and_shapes() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"version\":99,\"files\":{}}").is_err());
        assert!(Baseline::parse("{\"version\":1,\"files\":{\"a\":3}}").is_err());
        assert!(Baseline::parse("{\"version\":1,\"files\":{}}").is_ok());
    }
}
