//! Classified analysis results and their human/JSON renderings.

use crate::baseline::Baseline;
use crate::rules::{rule_info, Enforcement, Finding, RULES};
use scp_json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Outcome of analyzing the whole workspace, classified against a
/// committed baseline.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, including suppressed ones.
    pub findings: Vec<Finding>,
    /// Observed counts for ratcheted rules (unsuppressed findings only).
    pub observed: Baseline,
    /// Findings that the gate rejects: deny-rule findings plus ratcheted
    /// findings in files whose count exceeds the baseline.
    pub violations: Vec<Finding>,
    /// `(file, rule)` pairs over their baseline, with (observed, allowed).
    pub regressions: Vec<(String, String, u64, u64)>,
    /// Non-empty when the committed baseline differs from observed counts.
    pub baseline_diff: Vec<String>,
}

impl Report {
    /// Classifies raw findings against the committed baseline.
    pub fn build(files_scanned: usize, findings: Vec<Finding>, committed: &Baseline) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for f in &findings {
            if f.suppressed {
                continue;
            }
            if rule_info(f.rule).is_some_and(|r| r.enforcement == Enforcement::Ratcheted) {
                *counts
                    .entry(f.file.clone())
                    .or_default()
                    .entry(f.rule.to_owned())
                    .or_insert(0) += 1;
            }
        }
        let observed = Baseline::from_counts(&counts);

        let mut regressions = Vec::new();
        for (file, rules) in &observed.counts {
            for (rule, &n) in rules {
                let allowed = committed.allowed(file, rule);
                if n > allowed {
                    regressions.push((file.clone(), rule.clone(), n, allowed));
                }
            }
        }

        let violations: Vec<Finding> = findings
            .iter()
            .filter(|f| !f.suppressed)
            .filter(|f| match rule_info(f.rule).map(|r| r.enforcement) {
                Some(Enforcement::Deny) | None => true,
                Some(Enforcement::Ratcheted) => {
                    observed.allowed(&f.file, f.rule) > committed.allowed(&f.file, f.rule)
                }
            })
            .cloned()
            .collect();

        let baseline_diff = committed.diff(&observed);
        Self {
            files_scanned,
            findings,
            observed,
            violations,
            regressions,
            baseline_diff,
        }
    }

    /// Whether the deny gate passes (no violations).
    pub fn deny_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the committed baseline matches observed counts exactly.
    pub fn baseline_in_sync(&self) -> bool {
        self.baseline_diff.is_empty()
    }

    fn suppressed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.suppressed).count()
    }

    fn baselined_count(&self) -> usize {
        self.findings.len() - self.suppressed_count() - self.violations.len()
    }

    /// Renders the human-readable report.
    pub fn render_human(&self, verbose: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scp-analyze: {} files, {} findings ({} baselined, {} allowed by pragma, {} violations)",
            self.files_scanned,
            self.findings.len(),
            self.baselined_count(),
            self.suppressed_count(),
            self.violations.len(),
        );
        if !self.violations.is_empty() {
            let _ = writeln!(out, "\nviolations:");
            for f in &self.violations {
                let _ = writeln!(out, "  {}:{} [{}] {}", f.file, f.line, f.rule, f.message);
                let _ = writeln!(out, "      {}", f.snippet);
            }
        }
        if !self.regressions.is_empty() {
            let _ = writeln!(out, "\nratchet regressions (observed > baseline):");
            for (file, rule, n, allowed) in &self.regressions {
                let _ = writeln!(out, "  {file}: {rule} {n} > {allowed}");
            }
        }
        if !self.baseline_in_sync() {
            let _ = writeln!(
                out,
                "\nbaseline out of sync (run `scp-analyze --update-baseline`):"
            );
            for d in &self.baseline_diff {
                let _ = writeln!(out, "  {d}");
            }
        }
        if verbose {
            let _ = writeln!(out, "\nper-rule totals:");
            for rule in RULES {
                let n = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule.name && !f.suppressed)
                    .count();
                let s = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule.name && f.suppressed)
                    .count();
                let _ = writeln!(
                    out,
                    "  {:16} {:4} active, {:3} allowed  ({})",
                    rule.name, n, s, rule.description
                );
            }
        }
        out
    }

    /// Renders the machine-readable JSON report.
    pub fn render_json(&self) -> Json {
        let finding_json = |f: &Finding| {
            Json::obj([
                ("file", Json::Str(f.file.clone())),
                ("line", Json::Num(f.line as f64)),
                ("rule", Json::Str(f.rule.to_owned())),
                ("message", Json::Str(f.message.clone())),
                ("suppressed", Json::Bool(f.suppressed)),
            ])
        };
        let rule_totals: BTreeMap<String, Json> = RULES
            .iter()
            .map(|rule| {
                let active = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule.name && !f.suppressed)
                    .count();
                let allowed = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule.name && f.suppressed)
                    .count();
                (
                    rule.name.to_owned(),
                    Json::obj([
                        ("active", Json::Num(active as f64)),
                        ("allowed", Json::Num(allowed as f64)),
                        (
                            "ratcheted",
                            Json::Bool(rule.enforcement == Enforcement::Ratcheted),
                        ),
                    ]),
                )
            })
            .collect();
        Json::obj([
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            ("findings", Json::Num(self.findings.len() as f64)),
            (
                "violations",
                Json::arr(self.violations.iter().map(finding_json)),
            ),
            ("baseline_in_sync", Json::Bool(self.baseline_in_sync())),
            (
                "baseline_diff",
                Json::arr(self.baseline_diff.iter().map(|d| Json::Str(d.clone()))),
            ),
            ("rules", Json::Obj(rule_totals)),
            ("observed_baseline", self.observed.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &'static str, suppressed: bool) -> Finding {
        Finding {
            file: file.to_owned(),
            line: 1,
            rule,
            message: "m".to_owned(),
            snippet: "s".to_owned(),
            suppressed,
        }
    }

    #[test]
    fn deny_rule_findings_are_always_violations() {
        let r = Report::build(
            1,
            vec![finding("a.rs", "wall-clock", false)],
            &Baseline::default(),
        );
        assert!(!r.deny_clean());
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn suppressed_findings_are_not_violations() {
        let r = Report::build(
            1,
            vec![finding("a.rs", "wall-clock", true)],
            &Baseline::default(),
        );
        assert!(r.deny_clean());
    }

    #[test]
    fn ratcheted_findings_within_baseline_pass() {
        let committed = {
            let mut counts = BTreeMap::new();
            let mut rules = BTreeMap::new();
            rules.insert("panic-path".to_owned(), 1u64);
            counts.insert("a.rs".to_owned(), rules);
            Baseline { counts }
        };
        let r = Report::build(1, vec![finding("a.rs", "panic-path", false)], &committed);
        assert!(r.deny_clean(), "{:?}", r.violations);
        assert!(r.baseline_in_sync());
    }

    #[test]
    fn ratcheted_findings_above_baseline_fail() {
        let r = Report::build(
            1,
            vec![finding("a.rs", "panic-path", false)],
            &Baseline::default(),
        );
        assert!(!r.deny_clean());
        assert_eq!(r.regressions.len(), 1);
        assert!(!r.baseline_in_sync());
    }

    #[test]
    fn improvement_passes_deny_but_fails_sync() {
        let committed = {
            let mut counts = BTreeMap::new();
            let mut rules = BTreeMap::new();
            rules.insert("panic-path".to_owned(), 2u64);
            counts.insert("a.rs".to_owned(), rules);
            Baseline { counts }
        };
        let r = Report::build(1, vec![finding("a.rs", "panic-path", false)], &committed);
        assert!(r.deny_clean());
        assert!(!r.baseline_in_sync());
    }

    #[test]
    fn renders_both_forms() {
        let r = Report::build(
            2,
            vec![finding("a.rs", "wall-clock", false)],
            &Baseline::default(),
        );
        let human = r.render_human(true);
        assert!(human.contains("violations"));
        assert!(human.contains("wall-clock"));
        let json = r.render_json();
        assert_eq!(json.get("files_scanned").and_then(Json::as_u64), Some(2));
        assert_eq!(
            json.get("baseline_in_sync").and_then(Json::as_bool),
            Some(true), // no ratcheted findings -> empty baselines match
        );
    }
}
