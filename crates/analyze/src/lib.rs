//! `scp-analyze` — in-repo static analysis for determinism and
//! panic-safety.
//!
//! PR 1 made bit-for-bit replayable run journals and thread-count-invariant
//! adaptive stopping this workspace's headline guarantee. That guarantee
//! rests on *code* properties nothing used to enforce: no hash-order
//! iteration feeding results, no wall-clock or ambient entropy in result
//! paths, no panics tearing down a sweep halfway. This crate is a
//! dependency-free checker for exactly those properties, in the same
//! offline, in-repo spirit as `scp-json` and `scp_bench::harness`.
//!
//! Pipeline: [`files`] walks the workspace and classifies every `.rs`
//! file; [`lexer`] masks comments and literals so rules only ever see
//! code; [`rules`] runs the rule set and applies `scp-allow` suppressions
//! ([`pragma`]); [`baseline`] ratchets pre-existing debt; [`report`]
//! classifies findings into violations and renders human/JSON output.
//!
//! Three consumers: the `scp-analyze` binary (CI runs it with `--deny
//! --check-baseline`), the tier-1 gate tests (`cargo test -p scp-analyze`
//! and the root suite), and developers iterating with
//! `--update-baseline`.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod files;
pub mod interleave;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod surface;
pub mod syntax;

use baseline::{Baseline, BASELINE_FILE};
use report::Report;
use std::io;
use std::path::Path;
use surface::{Surface, SurfaceReport, SURFACE_FILE};

/// Analyzes every workspace `.rs` file under `root` and classifies the
/// findings against the committed baseline (an absent baseline file is an
/// empty baseline).
///
/// # Errors
///
/// Returns an I/O error if sources cannot be read, or a baseline parse
/// error as [`io::ErrorKind::InvalidData`].
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let committed = load_baseline(root)?;
    analyze_workspace_against(root, &committed)
}

/// Like [`analyze_workspace`], with an explicit baseline.
///
/// # Errors
///
/// Returns an I/O error if sources cannot be read.
pub fn analyze_workspace_against(root: &Path, committed: &Baseline) -> io::Result<Report> {
    let sources = files::collect_sources(root)?;
    let mut findings = Vec::new();
    for file in &sources {
        findings.extend(rules::check_file(file));
    }
    Ok(Report::build(sources.len(), findings, committed))
}

/// Loads the committed baseline from `root`, or an empty one if the file
/// does not exist yet.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a malformed baseline file.
pub fn load_baseline(root: &Path) -> io::Result<Baseline> {
    let path = root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let text = std::fs::read_to_string(&path)?;
    Baseline::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{BASELINE_FILE}: {e}")))
}

/// Writes `baseline` to its committed location under `root`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn store_baseline(root: &Path, baseline: &Baseline) -> io::Result<()> {
    std::fs::write(
        root.join(BASELINE_FILE),
        baseline.to_json().to_pretty_string(),
    )
}

/// Builds the workspace call graph and classifies its panic surface
/// against the committed `panic-surface.json` (an absent file is an
/// empty surface).
///
/// # Errors
///
/// Returns an I/O error if sources cannot be read, or a surface parse
/// error as [`io::ErrorKind::InvalidData`].
pub fn analyze_panic_surface(root: &Path) -> io::Result<SurfaceReport> {
    let committed = load_surface(root)?;
    let sources = files::collect_sources(root)?;
    let graph = callgraph::build(&sources);
    Ok(SurfaceReport::build(&graph, &committed))
}

/// Loads the committed panic surface from `root`, or an empty one if the
/// file does not exist yet.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a malformed surface file.
pub fn load_surface(root: &Path) -> io::Result<Surface> {
    let path = root.join(SURFACE_FILE);
    if !path.exists() {
        return Ok(Surface::default());
    }
    let text = std::fs::read_to_string(&path)?;
    Surface::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{SURFACE_FILE}: {e}")))
}

/// Writes the observed surface (with its per-crate summary) to the
/// committed location under `root`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn store_surface(root: &Path, report: &SurfaceReport) -> io::Result<()> {
    std::fs::write(
        root.join(SURFACE_FILE),
        report
            .observed
            .to_json(&report.per_crate)
            .to_pretty_string(),
    )
}
