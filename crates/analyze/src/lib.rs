//! `scp-analyze` — in-repo static analysis for determinism and
//! panic-safety.
//!
//! PR 1 made bit-for-bit replayable run journals and thread-count-invariant
//! adaptive stopping this workspace's headline guarantee. That guarantee
//! rests on *code* properties nothing used to enforce: no hash-order
//! iteration feeding results, no wall-clock or ambient entropy in result
//! paths, no panics tearing down a sweep halfway. This crate is a
//! dependency-free checker for exactly those properties, in the same
//! offline, in-repo spirit as `scp-json` and `scp_bench::harness`.
//!
//! Pipeline: [`files`] walks the workspace and classifies every `.rs`
//! file; [`lexer`] masks comments and literals so rules only ever see
//! code; [`rules`] runs the line rules, [`atomics`] checks
//! Release/Acquire pairing per atomic field, and [`callgraph`] +
//! [`taint`] compute transitive panic reachability and nondeterminism
//! taint; all raw findings are merged per file before `scp-allow`
//! suppressions apply ([`pragma`]); [`baseline`] ratchets pre-existing
//! debt and [`surface`] set-ratchets the panic and determinism surfaces;
//! [`report`] classifies findings into violations and renders human/JSON
//! output.
//!
//! Three consumers: the `scp-analyze` binary (CI runs it with `--deny
//! --check-baseline`), the tier-1 gate tests (`cargo test -p scp-analyze`
//! and the root suite), and developers iterating with
//! `--update-baseline`.

#![warn(missing_docs)]

pub mod atomics;
pub mod baseline;
pub mod callgraph;
pub mod files;
pub mod interleave;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod surface;
pub mod syntax;
pub mod taint;

use baseline::{Baseline, BASELINE_FILE};
use files::SourceFile;
use report::Report;
use std::io;
use std::path::Path;
use surface::{Surface, SurfaceReport, DET_SURFACE_FILE, SURFACE_FILE};

/// Everything one full analyzer run produces: the line/flow findings
/// report plus both ratcheted call-graph surfaces.
#[derive(Debug)]
pub struct Analysis {
    /// Findings classified against the ratcheted baseline. Includes the
    /// flow passes: `atomic-unpaired` findings, `nondet-taint` findings
    /// for functions that entered the determinism surface, and
    /// `DETERMINISM:` pragma hygiene.
    pub report: Report,
    /// The panic surface against `panic-surface.json`.
    pub panic_surface: SurfaceReport,
    /// The determinism surface against `determinism-surface.json`.
    pub det_surface: SurfaceReport,
}

/// Runs every pass over the workspace under `root`, classifying findings
/// against the committed baseline and both committed surfaces (absent
/// files are empty).
///
/// # Errors
///
/// Returns an I/O error if sources cannot be read, or a baseline/surface
/// parse error as [`io::ErrorKind::InvalidData`].
pub fn analyze_all(root: &Path) -> io::Result<Analysis> {
    let baseline = load_baseline(root)?;
    let panic_committed = load_surface(root)?;
    let det_committed = load_det_surface(root)?;
    let sources = files::collect_sources(root)?;
    Ok(analyze_sources(
        &sources,
        &baseline,
        &panic_committed,
        &det_committed,
    ))
}

/// Runs every pass over an explicit source set and explicit committed
/// artifacts. This is the whole pipeline in one place: line rules and
/// atomic-pairing checks produce raw per-file findings, the call graph
/// produces both surfaces plus `nondet-taint` findings for determinism
/// regressions and `DETERMINISM:` pragma hygiene, and `scp-allow`
/// suppression is applied once per file over the merged set — so a
/// pragma can target any pass's finding, and unused-pragma detection
/// sees everything.
pub fn analyze_sources(
    sources: &[SourceFile],
    baseline: &Baseline,
    panic_committed: &Surface,
    det_committed: &Surface,
) -> Analysis {
    let graph = callgraph::build(sources);
    let panic_surface = SurfaceReport::build(&graph, panic_committed);
    let det_surface = SurfaceReport::build_by(&graph, det_committed, |f| f.tainted);
    let taint_findings = taint::surface_findings(&graph, &det_surface.added, sources);
    let mut findings = Vec::new();
    for file in sources {
        let mut raw = rules::check_file_raw(file);
        raw.extend(atomics::check_file(file));
        raw.extend(
            taint_findings
                .iter()
                .filter(|f| f.file == file.rel_path)
                .cloned(),
        );
        raw.extend(
            graph
                .determinism_findings
                .iter()
                .filter(|f| f.file == file.rel_path)
                .cloned(),
        );
        raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        findings.extend(rules::apply_pragmas(file, raw));
    }
    Analysis {
        report: Report::build(sources.len(), findings, baseline),
        panic_surface,
        det_surface,
    }
}

/// Analyzes every workspace `.rs` file under `root` and classifies the
/// findings against the committed baseline (an absent baseline file is an
/// empty baseline).
///
/// # Errors
///
/// Returns an I/O error if sources cannot be read, or a baseline parse
/// error as [`io::ErrorKind::InvalidData`].
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let committed = load_baseline(root)?;
    analyze_workspace_against(root, &committed)
}

/// Like [`analyze_workspace`], with an explicit baseline. The committed
/// surfaces are still loaded from `root` (absent files are empty), since
/// the `nondet-taint` deny findings are defined relative to the
/// committed determinism surface.
///
/// # Errors
///
/// Returns an I/O error if sources cannot be read, or a surface parse
/// error as [`io::ErrorKind::InvalidData`].
pub fn analyze_workspace_against(root: &Path, committed: &Baseline) -> io::Result<Report> {
    let panic_committed = load_surface(root)?;
    let det_committed = load_det_surface(root)?;
    let sources = files::collect_sources(root)?;
    Ok(analyze_sources(&sources, committed, &panic_committed, &det_committed).report)
}

/// Loads the committed baseline from `root`, or an empty one if the file
/// does not exist yet.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a malformed baseline file.
pub fn load_baseline(root: &Path) -> io::Result<Baseline> {
    let path = root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let text = std::fs::read_to_string(&path)?;
    Baseline::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{BASELINE_FILE}: {e}")))
}

/// Writes `baseline` to its committed location under `root`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn store_baseline(root: &Path, baseline: &Baseline) -> io::Result<()> {
    std::fs::write(
        root.join(BASELINE_FILE),
        baseline.to_json().to_pretty_string(),
    )
}

/// Builds the workspace call graph and classifies its panic surface
/// against the committed `panic-surface.json` (an absent file is an
/// empty surface).
///
/// # Errors
///
/// Returns an I/O error if sources cannot be read, or a surface parse
/// error as [`io::ErrorKind::InvalidData`].
pub fn analyze_panic_surface(root: &Path) -> io::Result<SurfaceReport> {
    let committed = load_surface(root)?;
    let sources = files::collect_sources(root)?;
    let graph = callgraph::build(&sources);
    Ok(SurfaceReport::build(&graph, &committed))
}

/// Loads the committed panic surface from `root`, or an empty one if the
/// file does not exist yet.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a malformed surface file.
pub fn load_surface(root: &Path) -> io::Result<Surface> {
    let path = root.join(SURFACE_FILE);
    if !path.exists() {
        return Ok(Surface::default());
    }
    let text = std::fs::read_to_string(&path)?;
    Surface::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{SURFACE_FILE}: {e}")))
}

/// Writes the observed surface (with its per-crate summary) to the
/// committed location under `root`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn store_surface(root: &Path, report: &SurfaceReport) -> io::Result<()> {
    std::fs::write(
        root.join(SURFACE_FILE),
        report
            .observed
            .to_json(&report.per_crate)
            .to_pretty_string(),
    )
}

/// Builds the workspace call graph and classifies its determinism
/// surface against the committed `determinism-surface.json` (an absent
/// file is an empty surface).
///
/// # Errors
///
/// Returns an I/O error if sources cannot be read, or a surface parse
/// error as [`io::ErrorKind::InvalidData`].
pub fn analyze_det_surface(root: &Path) -> io::Result<SurfaceReport> {
    let committed = load_det_surface(root)?;
    let sources = files::collect_sources(root)?;
    let graph = callgraph::build(&sources);
    Ok(SurfaceReport::build_by(&graph, &committed, |f| f.tainted))
}

/// Loads the committed determinism surface from `root`, or an empty one
/// if the file does not exist yet.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a malformed surface file.
pub fn load_det_surface(root: &Path) -> io::Result<Surface> {
    let path = root.join(DET_SURFACE_FILE);
    if !path.exists() {
        return Ok(Surface::default());
    }
    let text = std::fs::read_to_string(&path)?;
    Surface::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{DET_SURFACE_FILE}: {e}"),
        )
    })
}

/// Writes the observed determinism surface (with its per-crate summary)
/// to the committed location under `root`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn store_det_surface(root: &Path, report: &SurfaceReport) -> io::Result<()> {
    std::fs::write(
        root.join(DET_SURFACE_FILE),
        report
            .observed
            .to_json(&report.per_crate)
            .to_pretty_string(),
    )
}
