//! Ratcheted call-graph surface reports.
//!
//! Where [`crate::baseline`] ratchets per-line finding *counts*, this
//! module ratchets *sets* of `pub` function identities computed over the
//! [`crate::callgraph`]. Two surfaces share the machinery:
//!
//! * the **panic surface** (`panic-surface.json`) — every `pub` library
//!   function that can transitively reach a panic-capable site
//!   (`unwrap`/`expect`/`panic!`/indexing — the `panic-path` and
//!   `slice-index` rules, counted pre-suppression);
//! * the **determinism surface** (`determinism-surface.json`) — every
//!   `pub` library function whose results nondeterminism can transitively
//!   reach (see [`crate::taint`]).
//!
//! Each set is committed at the workspace root; the gate enforces that it
//! can only shrink:
//!
//! * a `pub` function **entering** the surface fails `--deny` (new
//!   panic-reachable API is rejected);
//! * a function **leaving** the surface (or being deleted/renamed) passes
//!   `--deny` but fails `--check-baseline` until the file is regenerated
//!   with `--update-baseline`, locking the improvement in.
//!
//! Because call-graph resolution is overapproximate (see
//! [`crate::callgraph`]), membership means "the analyzer cannot rule a
//! panic out", not "a panic is reachable in practice". That is the right
//! polarity for a ratchet: false edges can only keep a function *in* the
//! surface, never silently drop it.

use crate::callgraph::{CallGraph, FnNode};
use scp_json::Json;
use std::collections::{BTreeMap, BTreeSet};

/// File name of the committed panic surface, relative to the workspace
/// root.
pub const SURFACE_FILE: &str = "panic-surface.json";

/// File name of the committed determinism surface, relative to the
/// workspace root.
pub const DET_SURFACE_FILE: &str = "determinism-surface.json";

/// Schema version written into the file.
pub const SURFACE_VERSION: u64 = 1;

/// The committed (or observed) surface: a set of function identifiers
/// (`rel_path::qualified_name`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Surface {
    /// Panic-reachable `pub` library functions.
    pub functions: BTreeSet<String>,
}

/// Per-crate aggregates, for reports and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrateSurface {
    /// `pub` library functions in the surface.
    pub reachable: u64,
    /// All `pub` library functions seen.
    pub pub_fns: u64,
}

/// The observed surface classified against the committed one.
#[derive(Debug, Default)]
pub struct SurfaceReport {
    /// What the call graph computed this run.
    pub observed: Surface,
    /// What `panic-surface.json` promised.
    pub committed: Surface,
    /// Functions that entered the surface (regressions — fail `--deny`).
    pub added: Vec<String>,
    /// Functions that left the surface (improvements — require
    /// `--update-baseline` to re-lock).
    pub removed: Vec<String>,
    /// Observed per-crate aggregates.
    pub per_crate: BTreeMap<String, CrateSurface>,
    /// Total functions in the call graph (including non-`pub`).
    pub fn_count: usize,
    /// Total resolved call edges.
    pub edge_count: usize,
}

impl Surface {
    /// Extracts the panic surface from a built call graph: `pub`
    /// functions in library files that reach a panic site.
    pub fn from_graph(graph: &CallGraph) -> Self {
        Self::from_graph_by(graph, |f| f.reaches_panic)
    }

    /// Extracts a surface from a built call graph: `pub` functions for
    /// which `member` holds.
    pub fn from_graph_by(graph: &CallGraph, member: impl Fn(&FnNode) -> bool) -> Self {
        let functions = graph
            .fns
            .iter()
            .filter(|f| f.is_pub && member(f))
            .map(|f| f.id.clone())
            .collect();
        Self { functions }
    }

    /// Serializes to the committed JSON form. The `summary` block is
    /// informational (per-crate counts derived from the id paths);
    /// [`Surface::parse`] ignores it.
    pub fn to_json(&self, per_crate: &BTreeMap<String, CrateSurface>) -> Json {
        let summary: BTreeMap<String, Json> = per_crate
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    Json::obj([
                        ("reachable", Json::Num(c.reachable as f64)),
                        ("pub_fns", Json::Num(c.pub_fns as f64)),
                    ]),
                )
            })
            .collect();
        Json::obj([
            ("version", Json::Num(SURFACE_VERSION as f64)),
            ("summary", Json::Obj(summary)),
            (
                "functions",
                Json::arr(self.functions.iter().map(|f| Json::Str(f.clone()))),
            ),
        ])
    }

    /// Parses the committed JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Self, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        let version = json
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("surface missing numeric `version`")?;
        if version != SURFACE_VERSION {
            return Err(format!(
                "surface version {version} unsupported (expected {SURFACE_VERSION})"
            ));
        }
        let items = json
            .get("functions")
            .and_then(Json::as_array)
            .ok_or("surface missing `functions` array")?;
        let mut functions = BTreeSet::new();
        for item in items {
            let id = item
                .as_str()
                .ok_or("surface `functions` entry is not a string")?;
            functions.insert(id.to_owned());
        }
        Ok(Self { functions })
    }
}

impl SurfaceReport {
    /// Classifies `graph`'s panic surface against the committed one.
    pub fn build(graph: &CallGraph, committed: &Surface) -> Self {
        Self::build_by(graph, committed, |f| f.reaches_panic)
    }

    /// Classifies the surface selected by `member` against `committed`.
    pub fn build_by(
        graph: &CallGraph,
        committed: &Surface,
        member: impl Fn(&FnNode) -> bool,
    ) -> Self {
        let observed = Surface::from_graph_by(graph, &member);
        let added: Vec<String> = observed
            .functions
            .difference(&committed.functions)
            .cloned()
            .collect();
        let removed: Vec<String> = committed
            .functions
            .difference(&observed.functions)
            .cloned()
            .collect();
        let mut per_crate: BTreeMap<String, CrateSurface> = BTreeMap::new();
        for f in &graph.fns {
            if !f.is_pub {
                continue;
            }
            let entry = per_crate.entry(f.crate_name.clone()).or_default();
            entry.pub_fns += 1;
            if member(f) {
                entry.reachable += 1;
            }
        }
        Self {
            observed,
            committed: committed.clone(),
            added,
            removed,
            per_crate,
            fn_count: graph.fns.len(),
            edge_count: graph.edge_count,
        }
    }

    /// No function entered the surface (the `--deny` condition).
    pub fn no_regressions(&self) -> bool {
        self.added.is_empty()
    }

    /// The committed file matches reality exactly (the `--check-baseline`
    /// condition).
    pub fn in_sync(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::files::SourceFile;

    fn graph() -> CallGraph {
        callgraph::build(&[SourceFile::from_source(
            "crates/sim/src/g.rs",
            "pub fn risky() { x.unwrap(); }\n\
             pub fn wraps() { risky(); }\n\
             pub fn clean() -> u64 { 1 }\n\
             fn internal() { y.unwrap(); }\n",
        )])
    }

    #[test]
    fn surface_is_pub_reachable_only() {
        let s = Surface::from_graph(&graph());
        let ids: Vec<&str> = s.functions.iter().map(String::as_str).collect();
        assert_eq!(
            ids,
            vec!["crates/sim/src/g.rs::risky", "crates/sim/src/g.rs::wraps"],
            "clean is out; internal is non-pub"
        );
    }

    #[test]
    fn roundtrips_through_json() {
        let g = graph();
        let report = SurfaceReport::build(&g, &Surface::default());
        let text = report
            .observed
            .to_json(&report.per_crate)
            .to_pretty_string();
        let back = Surface::parse(&text).expect("parse");
        assert_eq!(report.observed, back);
    }

    #[test]
    fn report_classifies_added_and_removed() {
        let g = graph();
        let mut committed = Surface::from_graph(&g);
        committed
            .functions
            .insert("crates/sim/src/g.rs::ghost".to_owned());
        committed.functions.remove("crates/sim/src/g.rs::wraps");
        let report = SurfaceReport::build(&g, &committed);
        assert_eq!(report.added, vec!["crates/sim/src/g.rs::wraps"]);
        assert_eq!(report.removed, vec!["crates/sim/src/g.rs::ghost"]);
        assert!(!report.no_regressions());
        assert!(!report.in_sync());
    }

    #[test]
    fn in_sync_when_committed_matches() {
        let g = graph();
        let committed = Surface::from_graph(&g);
        let report = SurfaceReport::build(&g, &committed);
        assert!(report.no_regressions() && report.in_sync());
        let sim = report.per_crate.get("scp-sim").expect("crate entry");
        assert_eq!(sim.pub_fns, 3);
        assert_eq!(sim.reachable, 2);
    }

    #[test]
    fn rejects_bad_versions_and_shapes() {
        assert!(Surface::parse("{}").is_err());
        assert!(Surface::parse("{\"version\":99,\"functions\":[]}").is_err());
        assert!(Surface::parse("{\"version\":1,\"functions\":[3]}").is_err());
        assert!(Surface::parse("{\"version\":1,\"functions\":[]}").is_ok());
    }
}
