//! A brace-tree item parser layered on the lexer's code mask.
//!
//! The line-level rules of PR 2 see one line at a time; the flow-aware
//! checks of this PR (the call-graph panic surface, `#[cfg(test)]`
//! scoping by *item region* rather than by textual heuristic) need real
//! structure: which functions exist, where each one's body starts and
//! ends, which `impl`/`mod` it lives in, and what the file imports.
//!
//! The parser runs on the **code mask** (see [`crate::lexer`]), so brace
//! counting and keyword matching can never be fooled by braces or
//! keywords inside strings and comments. It is *total*: malformed input
//! degrades to fewer/looser items, never to a panic — the compiler owns
//! syntax errors, this module only needs spans that are right for
//! compiling code.
//!
//! The grammar subset it understands:
//!
//! * items with bodies: `fn`, `mod`, `impl`, `trait`, `struct`, `enum`,
//!   `union` — each with its `{ ... }` extent found by depth counting
//!   (or its terminating `;` for bodiless forms);
//! * item *preludes*: everything between the previous item boundary and
//!   the keyword, scanned for `pub` and `#[cfg(test)]`;
//! * nested items: an `fn` inside an `fn`, a `mod` inside a `mod` — the
//!   result is a tree, and every item knows its ancestors' names;
//! * `use` declarations, including braced groups, `as` renames and
//!   globs — flattened into one [`UseDecl`] per imported leaf.

use crate::lexer::MaskedSource;

/// What kind of item a node of the tree is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item (free, associated, or nested).
    Fn,
    /// A `mod name { ... }` (or `mod name;`) item.
    Mod,
    /// An `impl` block; the name is the implemented-for type.
    Impl,
    /// A `trait` definition.
    Trait,
    /// A `struct`, `enum` or `union` definition.
    Type,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// The item's own name (type name for `impl` blocks; empty when no
    /// name could be recovered).
    pub name: String,
    /// Whether the prelude carries an *unrestricted* `pub` modifier.
    /// Restricted forms (`pub(crate)`, `pub(super)`, `pub(in ...)`)
    /// export nothing outside the crate, so surface accounting treats
    /// them as private.
    pub is_pub: bool,
    /// Whether the prelude carries `#[cfg(test)]`, or an ancestor does.
    pub cfg_test: bool,
    /// Byte range `[start, end)` in the code mask covering the prelude,
    /// header and body (through the closing `}` or `;`).
    pub span: (usize, usize),
    /// Byte range of the body interior (between the braces), when the
    /// item has a braced body.
    pub body: Option<(usize, usize)>,
    /// Nested items found inside the body.
    pub children: Vec<Item>,
}

/// One imported leaf from a `use` declaration: `use a::b::{c, d as e};`
/// flattens to two of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Full path segments, e.g. `["scp_core", "bounds", "upper_bound"]`;
    /// a glob import ends with `"*"`.
    pub path: Vec<String>,
    /// The name the import binds locally (the rename after `as`, or the
    /// last path segment).
    pub name: String,
}

/// A function flattened out of the tree, with its lexical context.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `::`-joined enclosing item names plus the function name, e.g.
    /// `Producer::try_push` or `tests::roundtrip`.
    pub qualified: String,
    /// Whether the function itself carries a `pub` modifier.
    pub is_pub: bool,
    /// Whether the function or any ancestor is `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Name of the nearest enclosing `impl` or `trait` item, when the
    /// function is associated. `None` for free functions (including free
    /// functions nested in `mod`s).
    pub owner: Option<String>,
    /// Whether [`FnItem::owner`] names an `impl` block (a concrete
    /// implementing type) rather than a `trait` declaration.
    pub owner_is_impl: bool,
    /// Byte span of the whole item (prelude through closing brace).
    pub span: (usize, usize),
    /// Byte span of the body interior, when the function has one.
    pub body: Option<(usize, usize)>,
    /// 1-based first and last line of the span (inclusive).
    pub lines: (usize, usize),
}

/// A parsed file: the item tree plus the flattened views the call graph
/// consumes.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
    /// Every function in the file, in source order, with context.
    pub fns: Vec<FnItem>,
    /// Every `use` leaf in the file.
    pub uses: Vec<UseDecl>,
}

/// Parses one masked source file into its item tree and flattened views.
pub fn parse(masked: &MaskedSource) -> ParsedFile {
    let code = masked.code.as_str();
    let items = parse_region(code, 0, code.len(), false);
    let mut fns = Vec::new();
    flatten_fns(code, &items, &mut Vec::new(), None, &mut fns);
    let uses = parse_uses(code);
    ParsedFile { items, fns, uses }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte at `i`, or NUL past the end. The parser promises totality, so
/// every byte access goes through this instead of indexing.
pub(crate) fn at(bytes: &[u8], i: usize) -> u8 {
    bytes.get(i).copied().unwrap_or(0)
}

/// Substring `[a, b)`, or empty when the range is out of bounds (ranges
/// here always come from byte scans over the same string, but the
/// non-panicking form keeps the totality promise checkable).
pub(crate) fn sub(s: &str, a: usize, b: usize) -> &str {
    s.get(a..b.min(s.len())).unwrap_or("")
}

/// Suffix starting at `a`, or empty when out of bounds.
pub(crate) fn tail(s: &str, a: usize) -> &str {
    s.get(a..).unwrap_or("")
}

/// Item keywords the scanner recognizes (each further guarded at the
/// match site).
const ITEM_KEYWORDS: &[(&str, ItemKind)] = &[
    ("fn", ItemKind::Fn),
    ("mod", ItemKind::Mod),
    ("impl", ItemKind::Impl),
    ("trait", ItemKind::Trait),
    ("struct", ItemKind::Type),
    ("enum", ItemKind::Type),
    ("union", ItemKind::Type),
];

/// Finds the next word token starting at or after `from`; returns
/// `(start, end)` of the token.
fn next_token(bytes: &[u8], mut from: usize, end: usize) -> Option<(usize, usize)> {
    while from < end && !is_ident(at(bytes, from)) {
        from += 1;
    }
    if from >= end {
        return None;
    }
    let start = from;
    while from < end && is_ident(at(bytes, from)) {
        from += 1;
    }
    Some((start, from))
}

/// The first non-whitespace byte at or after `from` (within `end`).
fn next_nonspace(bytes: &[u8], mut from: usize, end: usize) -> Option<(usize, u8)> {
    while from < end {
        let b = at(bytes, from);
        if !b.is_ascii_whitespace() {
            return Some((from, b));
        }
        from += 1;
    }
    None
}

/// Scans `[start, end)` of the code mask for items; `parent_test` marks
/// everything found as test code.
fn parse_region(code: &str, start: usize, end: usize, parent_test: bool) -> Vec<Item> {
    let bytes = code.as_bytes();
    let mut items = Vec::new();
    let mut cursor = start;
    // The last item/statement boundary seen, bounding the next prelude.
    let mut boundary = start;
    while let Some((tok_start, tok_end)) = next_token(bytes, cursor, end) {
        let tok = sub(code, tok_start, tok_end);
        let kind = ITEM_KEYWORDS
            .iter()
            .find(|(kw, _)| *kw == tok)
            .map(|(_, k)| *k);
        let Some(kind) = kind else {
            // Keep the boundary current: `;`, `{`, `}` between tokens
            // reset where the next item's prelude can start.
            boundary = advance_boundary(bytes, boundary, tok_end, end);
            cursor = tok_end;
            continue;
        };
        if let Some(item) = parse_item(code, kind, boundary, tok_start, tok_end, end, parent_test) {
            cursor = item.span.1;
            boundary = item.span.1;
            items.push(item);
        } else {
            boundary = advance_boundary(bytes, boundary, tok_end, end);
            cursor = tok_end;
        }
    }
    items
}

/// Moves the prelude boundary forward past any `;`/`{`/`}` in
/// `[boundary, upto)`.
fn advance_boundary(bytes: &[u8], boundary: usize, upto: usize, end: usize) -> usize {
    let mut b = boundary;
    let upto = upto.min(end);
    let mut i = b;
    while i < upto {
        if matches!(at(bytes, i), b';' | b'{' | b'}') {
            b = i + 1;
        }
        i += 1;
    }
    b
}

/// Parses one item whose keyword occupies `[kw_start, kw_end)`. Returns
/// `None` when the keyword turns out not to start an item (e.g. an
/// `fn(u64) -> u64` pointer type, `s.union(...)`).
fn parse_item(
    code: &str,
    kind: ItemKind,
    boundary: usize,
    kw_start: usize,
    kw_end: usize,
    end: usize,
    parent_test: bool,
) -> Option<Item> {
    let bytes = code.as_bytes();
    // A keyword preceded by `.` (method call) or `::` is not an item.
    if kw_start > 0 && matches!(at(bytes, kw_start - 1), b'.' | b':') {
        return None;
    }
    let name = match kind {
        ItemKind::Impl => String::new(), // resolved from the header below
        _ => {
            let (name_start, name_end) = next_token(bytes, kw_end, end)?;
            // The name must directly follow the keyword (only whitespace
            // between), otherwise `fn` was a type like `fn(u64) -> u64`.
            if let Some((pos, b)) = next_nonspace(bytes, kw_end, end) {
                if pos < name_start && b != b'<' {
                    return None;
                }
            }
            if matches!(next_nonspace(bytes, kw_end, end), Some((_, b'('))) {
                return None;
            }
            sub(code, name_start, name_end).to_owned()
        }
    };

    // Find the body `{` or the terminating `;`, whichever comes first.
    // Item headers (signature, generics, where clause, impl header)
    // contain no braces in the grammar subset we care about.
    let mut i = kw_end;
    let mut open = None;
    while i < end {
        match at(bytes, i) {
            b'{' => {
                open = Some(i);
                break;
            }
            b';' => break,
            _ => i += 1,
        }
    }

    let name = if kind == ItemKind::Impl {
        impl_name(sub(code, kw_end, open.unwrap_or(i).min(end)))
    } else {
        name
    };

    let prelude = sub(code, boundary, kw_start);
    let is_pub = has_pub_unrestricted(prelude);
    let attr_from = attr_window_start(code, boundary, kw_start);
    let cfg_test = parent_test || sub(code, attr_from, kw_start).contains("#[cfg(test)]");

    match open {
        Some(open_at) => {
            let close = match_brace(bytes, open_at, end);
            let body = (open_at + 1, close.saturating_sub(1).max(open_at + 1));
            let children = parse_region(code, body.0, body.1, cfg_test);
            Some(Item {
                kind,
                name,
                is_pub,
                cfg_test,
                span: (attr_from.min(kw_start), close),
                body: Some(body),
                children,
            })
        }
        None => Some(Item {
            kind,
            name,
            is_pub,
            cfg_test,
            span: (attr_from.min(kw_start), (i + 1).min(end)),
            body: None,
            children: Vec::new(),
        }),
    }
}

/// The index just past the `}` matching the `{` at `open` (or `end` when
/// the input runs out first).
fn match_brace(bytes: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        match at(bytes, j) {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end
}

/// Walks the prelude back from `kw_start` to include contiguous
/// attribute lines (`#[...]`), so `#[cfg(test)]` two lines above the
/// keyword still counts as this item's.
fn attr_window_start(code: &str, boundary: usize, kw_start: usize) -> usize {
    let prelude = sub(code, boundary, kw_start);
    match prelude.find("#[") {
        Some(off) => boundary + off,
        None => kw_start - trailing_modifiers(prelude),
    }
}

/// Length of the trailing modifier run (`pub`, `const`, `async`,
/// `unsafe`, `extern`, whitespace) of a prelude — the part that visually
/// belongs to the item.
fn trailing_modifiers(prelude: &str) -> usize {
    let trimmed = prelude.trim_end();
    let mut keep = prelude.len() - trimmed.len();
    let mut rest = trimmed;
    loop {
        let before = rest.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
        let word = tail(rest, before.len());
        if matches!(
            word,
            "pub" | "const" | "async" | "unsafe" | "extern" | "default"
        ) && !word.is_empty()
        {
            keep += word.len();
            let unspaced = before.trim_end();
            keep += before.len() - unspaced.len();
            rest = unspaced;
            // `pub(crate)`-style restriction parens.
            if rest.ends_with(')') {
                if let Some(open) = rest.rfind('(') {
                    keep += rest.len() - open;
                    rest = sub(rest, 0, open).trim_end();
                }
            }
        } else {
            break;
        }
    }
    keep
}

/// Whether `text` carries an unrestricted `pub` token: a standalone
/// `pub` word not immediately followed by a `(restriction)`.
fn has_pub_unrestricted(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0usize;
    while let Some(off) = tail(text, from).find("pub") {
        let start = from + off;
        let end = start + 3;
        from = start + 1;
        let left_ok = start == 0 || !is_ident(at(bytes, start - 1));
        if !left_ok || is_ident(at(bytes, end)) {
            continue;
        }
        if tail(text, end).trim_start().starts_with('(') {
            continue; // `pub(crate)` / `pub(super)` / `pub(in ...)`
        }
        return true;
    }
    false
}

/// Extracts the implemented-for type name from an `impl` header (the
/// text between `impl` and the opening brace).
fn impl_name(header: &str) -> String {
    // `impl<T> Trait for Type<T>` — the type is what follows the last
    // top-level ` for `; otherwise the whole header is the type.
    let header = strip_generics(header);
    let target = match split_last_for(&header) {
        Some(after_for) => after_for,
        None => header.as_str().to_owned(),
    };
    // Last path segment, stripped of generics and references.
    let target = target.trim().trim_start_matches('&').trim();
    let target = target.split('<').next().unwrap_or(target).trim();
    let seg = target.rsplit("::").next().unwrap_or(target).trim();
    seg.chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Removes one leading `<...>` generics group (depth-counted) from an
/// impl header.
fn strip_generics(header: &str) -> String {
    let trimmed = header.trim_start();
    if !trimmed.starts_with('<') {
        return trimmed.to_owned();
    }
    let mut depth = 0i32;
    for (i, c) in trimmed.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return tail(trimmed, i + 1).to_owned();
                }
            }
            _ => {}
        }
    }
    trimmed.to_owned()
}

/// The text after the last ` for ` that sits outside angle brackets.
fn split_last_for(header: &str) -> Option<String> {
    let bytes = header.as_bytes();
    let mut depth = 0i32;
    let mut last: Option<usize> = None;
    let mut i = 0usize;
    while i < bytes.len() {
        match at(bytes, i) {
            b'<' => depth += 1,
            b'>' => depth -= 1,
            b'f' if depth == 0 && tail(header, i).starts_with("for") => {
                let left_ok = i == 0 || !is_ident(at(bytes, i - 1));
                let right_ok = !is_ident(at(bytes, i + 3));
                if left_ok && right_ok {
                    last = Some(i + 3);
                }
            }
            _ => {}
        }
        i += 1;
    }
    last.map(|from| tail(header, from).to_owned())
}

/// Flattens the tree into [`FnItem`]s, accumulating context names.
/// `assoc` carries the nearest enclosing `impl`/`trait` (kind, name) so
/// associated functions know which type owns them.
fn flatten_fns(
    code: &str,
    items: &[Item],
    ctx: &mut Vec<String>,
    assoc: Option<(ItemKind, &str)>,
    out: &mut Vec<FnItem>,
) {
    for item in items {
        if item.kind == ItemKind::Fn {
            let qualified = if ctx.is_empty() {
                item.name.clone()
            } else {
                format!("{}::{}", ctx.join("::"), item.name)
            };
            out.push(FnItem {
                name: item.name.clone(),
                qualified,
                is_pub: item.is_pub,
                cfg_test: item.cfg_test,
                owner: assoc
                    .filter(|(_, n)| !n.is_empty())
                    .map(|(_, n)| n.to_owned()),
                owner_is_impl: matches!(assoc, Some((ItemKind::Impl, n)) if !n.is_empty()),
                span: item.span,
                body: item.body,
                lines: line_span(code, item.span),
            });
        }
        let named = !item.name.is_empty();
        if named {
            ctx.push(item.name.clone());
        }
        let child_assoc = match item.kind {
            ItemKind::Impl | ItemKind::Trait => Some((item.kind, item.name.as_str())),
            // A fn nested inside an associated fn is itself free; a mod
            // resets association too.
            _ => None,
        };
        flatten_fns(code, &item.children, ctx, child_assoc, out);
        if named {
            ctx.pop();
        }
    }
}

/// `(first, last)` 1-based lines of a byte span. Leading whitespace of
/// the span (the newline/indent run a prelude may start with) is skipped
/// so `first` is the line the item's text actually starts on.
fn line_span(code: &str, span: (usize, usize)) -> (usize, usize) {
    let bytes = code.as_bytes();
    let end = span.1.min(code.len());
    let mut start = span.0.min(code.len());
    while start < end && at(bytes, start).is_ascii_whitespace() {
        start += 1;
    }
    let first = sub(code, 0, start).matches('\n').count() + 1;
    let last = sub(code, 0, end).matches('\n').count() + 1;
    (first, last)
}

// ------------------------------------------------------------------- uses

/// Parses every `use` declaration of the file into flattened leaves.
fn parse_uses(code: &str) -> Vec<UseDecl> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some((tok_start, tok_end)) = next_token(bytes, from, bytes.len()) {
        from = tok_end;
        if sub(code, tok_start, tok_end) != "use" {
            continue;
        }
        // Take everything up to the terminating `;`.
        let Some(semi) = tail(code, tok_end).find(';') else {
            break;
        };
        let decl = sub(code, tok_end, tok_end + semi);
        flatten_use(decl.trim(), &mut Vec::new(), &mut out);
        from = tok_end + semi + 1;
    }
    out
}

/// Recursively flattens one use-path (possibly a braced group) onto
/// `prefix`.
fn flatten_use(decl: &str, prefix: &mut Vec<String>, out: &mut Vec<UseDecl>) {
    let decl = decl.trim();
    if decl.is_empty() {
        return;
    }
    // A braced group: split on top-level commas, recurse per element.
    if let Some(stripped) = decl.strip_prefix('{') {
        let inner = stripped.strip_suffix('}').unwrap_or(stripped);
        for part in split_top_commas(inner) {
            flatten_use(&part, prefix, out);
        }
        return;
    }
    match decl.find("::") {
        Some(sep) if !tail(decl, sep + 2).trim_start().is_empty() => {
            let head = sub(decl, 0, sep).trim();
            if !head.is_empty() {
                prefix.push(head.to_owned());
            }
            flatten_use(tail(decl, sep + 2), prefix, out);
            if !head.is_empty() {
                prefix.pop();
            }
        }
        _ => {
            // A leaf: `name`, `name as alias`, or `*`.
            let mut words = decl.split_whitespace();
            let leaf = words.next().unwrap_or("").trim_matches(',').to_owned();
            let alias = match (words.next(), words.next()) {
                (Some("as"), Some(a)) => a.to_owned(),
                _ => leaf.clone(),
            };
            if leaf.is_empty() {
                return;
            }
            let mut path = prefix.clone();
            path.push(leaf);
            out.push(UseDecl { path, name: alias });
        }
    }
}

/// Splits on commas that sit outside nested braces.
fn split_top_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '{' => {
                depth += 1;
                cur.push(c);
            }
            '}' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    fn fns_of(src: &str) -> Vec<FnItem> {
        parse(&mask(src)).fns
    }

    #[test]
    fn finds_free_and_associated_fns() {
        let src = "pub fn free() { body(); }\n\
                   struct S;\n\
                   impl S {\n\
                   \x20   pub fn method(&self) -> u64 { 1 }\n\
                   \x20   fn private(&self) {}\n\
                   }\n";
        let fns = fns_of(src);
        let names: Vec<&str> = fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, vec!["free", "S::method", "S::private"]);
        assert!(fns[0].is_pub && fns[1].is_pub && !fns[2].is_pub);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type_name() {
        let src = "impl<T: Clone> Iterator for Wrapper<T> {\n\
                   \x20   fn next(&mut self) -> Option<T> { None }\n\
                   }\n";
        let fns = fns_of(src);
        assert_eq!(fns[0].qualified, "Wrapper::next");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "struct S { call: fn(u64) -> u64 }\nfn real() {}\n";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn method_calls_named_like_keywords_are_not_items() {
        let src = "fn f(a: &std::collections::HashSet<u8>, b: &std::collections::HashSet<u8>) {\n\
                   \x20   let _n = a.union(b).count();\n\
                   }\n";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
    }

    #[test]
    fn nested_fns_carry_context() {
        let src = "mod outer {\n\
                   \x20   pub fn parent() {\n\
                   \x20       fn helper() {}\n\
                   \x20       helper();\n\
                   \x20   }\n\
                   }\n";
        let fns = fns_of(src);
        let names: Vec<&str> = fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, vec!["outer::parent", "outer::parent::helper"]);
    }

    #[test]
    fn cfg_test_marks_items_and_descendants() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn helper() {}\n\
                   \x20   #[test]\n\
                   \x20   fn case() { helper(); }\n\
                   }\n";
        let fns = fns_of(src);
        assert!(!fns[0].cfg_test);
        assert!(fns[1].cfg_test && fns[2].cfg_test);
    }

    #[test]
    fn braces_in_masked_literals_do_not_break_spans() {
        let src = "fn a() { let s = \"}}}{\"; }\nfn b() {}\n";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 2);
        assert!(fns[0].span.1 <= fns[1].span.0);
    }

    #[test]
    fn where_clauses_and_return_impls_do_not_confuse_bodies() {
        let src = "pub fn make<T>() -> impl Iterator<Item = T>\n\
                   where\n\
                   \x20   T: Default,\n\
                   {\n\
                   \x20   std::iter::empty()\n\
                   }\n";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn trait_method_declarations_without_bodies() {
        let src = "pub trait T {\n\
                   \x20   fn required(&self) -> u64;\n\
                   \x20   fn provided(&self) -> u64 { 0 }\n\
                   }\n";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
        assert_eq!(fns[0].qualified, "T::required");
    }

    #[test]
    fn use_decls_flatten_groups_renames_and_globs() {
        let src = "use scp_core::bounds::upper_bound;\n\
                   use scp_json::{Json, parse as parse_json};\n\
                   use std::collections::{BTreeMap, btree_map::Entry};\n\
                   use scp_sim::*;\n";
        let uses = parse(&mask(src)).uses;
        let names: Vec<&str> = uses.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "upper_bound",
                "Json",
                "parse_json",
                "BTreeMap",
                "Entry",
                "*"
            ]
        );
        assert_eq!(uses[0].path, vec!["scp_core", "bounds", "upper_bound"]);
        assert_eq!(uses[2].path[0], "scp_json");
    }

    #[test]
    fn unterminated_input_is_total() {
        for src in ["fn f() {", "impl {", "mod m {", "use a::{b", "fn"] {
            let _ = parse(&mask(src));
        }
    }

    #[test]
    fn spans_nest_and_do_not_overlap() {
        let src = "fn a() { if x { y(); } }\n\
                   mod m {\n\
                   \x20   fn b() {}\n\
                   \x20   fn c() {}\n\
                   }\n";
        let parsed = parse(&mask(src));
        let top = &parsed.items;
        assert_eq!(top.len(), 2);
        assert!(top[0].span.1 <= top[1].span.0);
        let m = &top[1];
        assert_eq!(m.children.len(), 2);
        for child in &m.children {
            let body = m.body.expect("mod body");
            assert!(child.span.0 >= body.0 && child.span.1 <= body.1);
        }
        assert!(m.children[0].span.1 <= m.children[1].span.0);
    }
}
