//! Transitive nondeterminism taint over the call graph.
//!
//! The line rules police nondeterminism *sources* where they stand; this
//! pass follows their **values**. A function is *tainted* when it
//! lexically contains a source site ([`crate::rules::taint_site_lines`]:
//! wall-clock reads — including whitelisted ones — env entropy,
//! `HashMap`/`HashSet` iteration, fully-`Relaxed` atomic loads) or calls
//! a tainted function, transitively along the (overapproximate) call
//! graph. Overapproximation is the right polarity here for the same
//! reason as the panic surface: a false edge can only keep a function
//! *in* the surface, never hide one.
//!
//! A `// DETERMINISM: <reason>` comment ([`crate::pragma`]) marks the
//! innermost function containing it as a justified *laundering point*:
//! the nondeterminism demonstrably does not corrupt results (a progress
//! display, wall-time journal *metadata*, a hash iteration whose output
//! is re-sorted or reduced to a cardinality). A laundering function is
//! never tainted and cuts propagation to its callers. A pragma that
//! launders nothing (no taint reaches its function) is reported as
//! `unused-allow`; a pragma without a reason is `invalid-pragma` — the
//! same hygiene the `scp-allow` machinery enforces.
//!
//! Every `pub` library function left tainted forms the **determinism
//! surface**, committed as `determinism-surface.json` and set-ratcheted
//! exactly like `panic-surface.json`: entering fails `--deny` (emitted as
//! a `nondet-taint` finding at the declaration), drift fails
//! `--check-baseline`, improvements re-lock with `--update-baseline`.

use crate::callgraph::CallGraph;
use crate::files::SourceFile;
use crate::rules::Finding;

/// Fixed-point taint propagation: a node is tainted if it has local
/// source sites or any callee is tainted — unless it launders
/// (`// DETERMINISM:`), which blocks both its own seeds and everything
/// flowing through it.
pub fn propagate(graph: &mut CallGraph) {
    let n = graph.fns.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, f) in graph.fns.iter().enumerate() {
        for &c in &f.callees {
            if let Some(r) = rev.get_mut(c) {
                r.push(i);
            }
        }
    }
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in graph.fns.iter_mut().enumerate() {
        if f.taint_sites > 0 && !f.launders {
            f.tainted = true;
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        for &caller in rev.get(i).map(Vec::as_slice).unwrap_or(&[]) {
            if let Some(f) = graph.fns.get_mut(caller) {
                if !f.tainted && !f.launders {
                    f.tainted = true;
                    queue.push(caller);
                }
            }
        }
    }
}

/// Renders a shortest call path from the function at `start` to a local
/// source site, e.g. `run_load -> client_loop -> claim_quota
/// (\`Relaxed\` atomic load... at line 108)`. Returns `None` when the
/// function is not tainted (no such path exists).
pub fn trace(graph: &CallGraph, start: usize) -> Option<String> {
    if !graph.fns.get(start)?.tainted {
        return None;
    }
    // BFS through tainted callees until a node with its own seed.
    let mut prev: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut seen: Vec<bool> = vec![false; graph.fns.len()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    if let Some(s) = seen.get_mut(start) {
        *s = true;
    }
    while let Some(i) = queue.pop_front() {
        let f = graph.fns.get(i)?;
        if f.taint_sites > 0 {
            // Walk predecessors back to `start`.
            let mut path = vec![i];
            let mut cur = i;
            while let Some(Some(p)) = prev.get(cur) {
                path.push(*p);
                cur = *p;
            }
            path.reverse();
            let names: Vec<&str> = path
                .iter()
                .filter_map(|&j| graph.fns.get(j).map(|f| f.name.as_str()))
                .collect();
            let what = f
                .first_taint
                .as_ref()
                .map(|(line, what)| format!("{what} at line {line}"))
                .unwrap_or_default();
            return Some(format!("{} ({what})", names.join(" -> ")));
        }
        for &c in &f.callees {
            let is_new = graph.fns.get(c).is_some_and(|cf| cf.tainted)
                && seen.get(c).copied() == Some(false);
            if is_new {
                if let (Some(s), Some(p)) = (seen.get_mut(c), prev.get_mut(c)) {
                    *s = true;
                    *p = Some(i);
                }
                queue.push_back(c);
            }
        }
    }
    None
}

/// Builds one `nondet-taint` finding per function that *entered* the
/// determinism surface (`added`, from the surface report), anchored at
/// its declaration line with a source trace in the message.
pub fn surface_findings(
    graph: &CallGraph,
    added: &[String],
    sources: &[SourceFile],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for id in added {
        let Some((idx, node)) = graph.fns.iter().enumerate().find(|(_, f)| &f.id == id) else {
            continue;
        };
        let snippet = sources
            .iter()
            .find(|s| s.rel_path == node.rel_path)
            .and_then(|s| s.lines.get(node.decl_line.saturating_sub(1)))
            .map(|l| l.trim().to_owned())
            .unwrap_or_default();
        let via = trace(graph, idx)
            .map(|t| format!(" via {t}"))
            .unwrap_or_default();
        out.push(Finding {
            file: node.rel_path.clone(),
            line: node.decl_line,
            rule: "nondet-taint",
            message: format!(
                "pub fn `{}` entered the determinism surface{via}; fix the source, cut the \
                 flow with `// DETERMINISM: <reason>` at a justified laundering point, or \
                 re-lock with --update-baseline",
                node.name
            ),
            snippet,
            suppressed: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::files::SourceFile;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, text)| SourceFile::from_source(path, text))
            .collect();
        callgraph::build(&sources)
    }

    fn node<'a>(g: &'a CallGraph, id: &str) -> &'a callgraph::FnNode {
        g.fns
            .iter()
            .find(|f| f.id.ends_with(id))
            .unwrap_or_else(|| panic!("no node ending in {id}"))
    }

    #[test]
    fn wall_clock_seed_taints_two_hop_callers() {
        let g = graph_of(&[(
            "crates/sim/src/t.rs",
            "pub fn top() -> f64 { mid() }\n\
             fn mid() -> f64 { read_clock() }\n\
             fn read_clock() -> f64 { let t = Instant::now(); 0.0 }\n\
             pub fn clean() -> u64 { 1 }\n",
        )]);
        assert!(node(&g, "::read_clock").taint_sites > 0);
        assert!(node(&g, "::read_clock").tainted);
        assert!(node(&g, "::mid").tainted);
        assert!(node(&g, "::top").tainted);
        assert!(!node(&g, "::clean").tainted);
    }

    #[test]
    fn determinism_pragma_cuts_propagation() {
        let g = graph_of(&[(
            "crates/sim/src/t.rs",
            "pub fn top() -> f64 { mid() }\n\
             fn mid() -> f64 {\n\
                 // DETERMINISM: wall time is progress metadata, never a result\n\
                 read_clock()\n\
             }\n\
             fn read_clock() -> f64 { let t = Instant::now(); 0.0 }\n",
        )]);
        assert!(node(&g, "::read_clock").tainted);
        assert!(node(&g, "::mid").launders);
        assert!(!node(&g, "::mid").tainted);
        assert!(!node(&g, "::top").tainted);
    }

    #[test]
    fn trace_names_the_path_and_source() {
        let g = graph_of(&[(
            "crates/sim/src/t.rs",
            "pub fn top() -> f64 { mid() }\n\
             fn mid() -> f64 { read_clock() }\n\
             fn read_clock() -> f64 { let t = Instant::now(); 0.0 }\n",
        )]);
        let idx = g
            .fns
            .iter()
            .position(|f| f.name == "top")
            .expect("top exists");
        let t = trace(&g, idx).expect("tainted");
        assert!(t.contains("top -> mid -> read_clock"), "{t}");
        assert!(t.contains("line 3"), "{t}");
    }
}
