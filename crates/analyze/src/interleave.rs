//! A deterministic bounded interleaving explorer — a dependency-free
//! "mini-loom" — for the serve path's lock-free SPSC ring.
//!
//! [`scp_serve::spsc::RingCore`] is generic over its memory substrate
//! ([`AtomicWord`] counters and [`SlotCell`] element slots). Production
//! instantiates it with `std` atomics; this module instantiates the *same
//! algorithm* with instrumented shims and exhaustively explores bounded
//! producer/consumer schedules under a DFS scheduler. The code checked
//! here is byte-for-byte the code serving queries — there is no model
//! copy that could drift.
//!
//! # How it works
//!
//! Two persistent worker threads run fixed programs (`P` pushes of the
//! tokens `1..=P`, `C` pops) against one shared ring. Every atomic
//! load/store and every slot access parks the worker at a rendezvous; the
//! explorer thread grants exactly one access at a time, so a schedule is
//! the sequence of thread choices at each step. Depth-first search with
//! replay enumerates every choice sequence (up to an optional budget),
//! deterministically: no wall clock, no randomness, no dependence on OS
//! scheduling.
//!
//! The shims model the memory orderings the ring claims to need:
//!
//! * atomic values themselves are sequentially consistent (each load sees
//!   the latest store — the usual simplification for schedule explorers);
//! * every access ticks the acting thread's vector clock; a release store
//!   publishes the storer's clock with the value, an acquire load joins
//!   it — exactly the C11 release/acquire synchronizes-with edge;
//! * slot accesses are *non-atomic*: a `put`/`take` whose thread clock
//!   does not dominate the previous conflicting access's clock is a data
//!   race, and the schedule is reported as a violation.
//!
//! That last rule is what makes ordering bugs observable on any host
//! architecture: weakening the producer's `Release` publication of `tail`
//! to `Relaxed` (the [`Config::weaken_tail_release`] fault injection)
//! leaves the consumer's acquire load with nothing to join, so the first
//! schedule in which the consumer takes a pushed slot is flagged as a
//! race. The regression test below asserts the explorer *fails* on that
//! weakening — if it ever stops failing, the explorer has lost its teeth.
//!
//! After each schedule the explorer drains the ring sequentially and
//! checks the full-run invariants: FIFO (pops observe accepted tokens in
//! push order), conservation (every accepted token is popped or drained —
//! nothing lost, nothing duplicated), and no lost wakeups (an item
//! published before the drain is always visible to it).

use scp_serve::spsc::{AtomicWord, RingCore, SlotCell};
use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Model thread count: one producer, one consumer.
const THREADS: usize = 2;
const PRODUCER: usize = 0;
const CONSUMER: usize = 1;

/// Atomic variable ids inside the model.
const HEAD: usize = 0;
const TAIL: usize = 1;

thread_local! {
    /// Which model thread the current OS thread is acting as (`None` on
    /// the explorer thread, whose accesses run in free-run mode).
    static CURRENT_TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// One bounded exploration: ring capacity, program lengths, an optional
/// schedule budget, and an optional fault injection.
#[derive(Debug, Clone)]
pub struct Config {
    /// Ring capacity in slots (0 rounds up to 1, as in production).
    pub capacity: usize,
    /// Producer program: `try_push` calls with tokens `1..=pushes`.
    pub pushes: usize,
    /// Consumer program: `try_pop` calls.
    pub pops: usize,
    /// `Some(max)` switches the consumer program to the batch-amortized
    /// pop: each of its `pops` calls is a `try_pop_many_core(max, ..)`
    /// sweep (the serve intake's drain path) instead of a scalar
    /// `try_pop_core`. `None` keeps the scalar program.
    pub consumer_batch: Option<usize>,
    /// Stop after this many schedules (`None` = run to exhaustion).
    pub budget: Option<usize>,
    /// Fault injection: demote the producer's `Release` store of `tail`
    /// to `Relaxed` inside the shim. The ring under test is unchanged —
    /// only the modeled ordering weakens — and the explorer must then
    /// find a data race.
    pub weaken_tail_release: bool,
    /// Fault injection: demote the consumer's `Release` store of `head`
    /// to `Relaxed` — the batch half of the protocol, where one store
    /// frees a whole sweep of slots for producer reuse. The explorer
    /// must catch the producer's unordered overwrite of a recycled slot.
    pub weaken_head_release: bool,
}

/// What one exploration covered and whether it found a violation.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Distinct schedules fully executed.
    pub schedules: usize,
    /// Total scheduled accesses across all schedules.
    pub steps: u64,
    /// Longest single schedule, in accesses.
    pub max_depth: usize,
    /// First violated property, if any (a data race or a broken queue
    /// invariant), with the schedule that produced it.
    pub violation: Option<String>,
}

/// A vector clock over the two model threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Clock([u64; THREADS]);

impl Clock {
    fn tick(&mut self, tid: usize) {
        if let Some(c) = self.0.get_mut(tid) {
            *c += 1;
        }
    }

    fn join(&mut self, other: &Clock) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Pointwise `self >= other`: everything `other` saw happened before
    /// the state `self` describes.
    fn dominates(&self, other: &Clock) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(m, t)| m >= t)
    }
}

/// One modeled atomic word: an SC value plus the message clock its latest
/// store published (empty unless the store was a release).
#[derive(Debug, Default)]
struct AtomState {
    value: u64,
    msg: Clock,
}

/// One modeled element slot: the stored token plus the epoch of the last
/// conflicting (mutating) access, for race detection.
#[derive(Debug, Clone, Default)]
struct SlotModel {
    value: Option<u64>,
    last_access: Option<(usize, Clock)>,
}

/// All shared state: scheduler control, the memory model, and per-replay
/// program outcomes. Owned by one mutex so every transition is a plain
/// sequential update.
#[derive(Debug, Default)]
struct Model {
    epoch: u64,
    shutdown: bool,
    granted: Option<usize>,
    parked: [bool; THREADS],
    done: [bool; THREADS],
    free_run: bool,
    clocks: [Clock; THREADS],
    atoms: [AtomState; 2],
    slots: Vec<SlotModel>,
    race: Option<String>,
    accepted: Vec<u64>,
    popped: Vec<u64>,
    weaken_tail_release: bool,
    weaken_head_release: bool,
}

struct Ctl {
    state: Mutex<Model>,
    cv: Condvar,
}

fn lock(ctl: &Ctl) -> MutexGuard<'_, Model> {
    ctl.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a>(ctl: &'a Ctl, guard: MutexGuard<'a, Model>) -> MutexGuard<'a, Model> {
    ctl.cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// The rendezvous every shim access goes through. Worker threads park
/// here until the explorer grants them the step; the access itself then
/// runs under the model lock. The explorer thread (no model tid) and
/// free-run mode execute immediately without scheduling.
fn access<R>(ctl: &Ctl, f: impl FnOnce(&mut Model, Option<usize>) -> R) -> R {
    let tid = CURRENT_TID.with(Cell::get);
    let mut m = lock(ctl);
    let Some(t) = tid.filter(|_| !m.free_run) else {
        return f(&mut m, None);
    };
    if let Some(p) = m.parked.get_mut(t) {
        *p = true;
    }
    ctl.cv.notify_all();
    while m.granted != Some(t) {
        m = wait(ctl, m);
    }
    if let Some(p) = m.parked.get_mut(t) {
        *p = false;
    }
    m.granted = None;
    if let Some(c) = m.clocks.get_mut(t) {
        c.tick(t);
    }
    let out = f(&mut m, Some(t));
    ctl.cv.notify_all();
    out
}

fn acquireish(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn releaseish(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// The instrumented counter handed to [`RingCore`].
struct ShimAtomic {
    ctl: Arc<Ctl>,
    var: usize,
}

impl AtomicWord for ShimAtomic {
    fn load(&self, order: Ordering) -> u64 {
        access(&self.ctl, |m, tid| {
            let (value, msg) = match m.atoms.get(self.var) {
                Some(a) => (a.value, a.msg.clone()),
                None => (0, Clock::default()),
            };
            if acquireish(order) {
                if let Some(c) = tid.and_then(|t| m.clocks.get_mut(t)) {
                    c.join(&msg);
                }
            }
            value
        })
    }

    fn store(&self, val: u64, order: Ordering) {
        access(&self.ctl, |m, tid| {
            let weakened = (m.weaken_tail_release && self.var == TAIL)
                || (m.weaken_head_release && self.var == HEAD);
            let publish = releaseish(order) && !weakened;
            let msg = match tid.filter(|_| publish) {
                Some(t) => m.clocks.get(t).cloned().unwrap_or_default(),
                None => Clock::default(),
            };
            if let Some(a) = m.atoms.get_mut(self.var) {
                a.value = val;
                a.msg = msg;
            }
        });
    }
}

/// The instrumented slot handed to [`RingCore`]. The token lives inside
/// the model, so both the memory effect and the race bookkeeping are one
/// locked update.
struct ShimSlot {
    ctl: Arc<Ctl>,
    idx: usize,
}

impl Default for ShimSlot {
    // Only exists to satisfy `from_parts`'s empty-`slots` fallback bound;
    // the explorer always passes a non-empty slot vector.
    fn default() -> Self {
        Self {
            ctl: Arc::new(Ctl {
                state: Mutex::new(Model::default()),
                cv: Condvar::new(),
            }),
            idx: 0,
        }
    }
}

impl SlotCell<u64> for ShimSlot {
    // SAFETY: the shim performs no unsafe operation; the contract is the
    // trait's sole-accessor precondition, which the race detector checks.
    unsafe fn put(&self, item: u64) {
        access(&self.ctl, |m, tid| {
            slot_access(m, self.idx, tid, Some(item))
        });
    }

    // SAFETY: as for `put` — fully safe shim, checked precondition.
    unsafe fn take(&self) -> Option<u64> {
        access(&self.ctl, |m, tid| slot_access(m, self.idx, tid, None))
    }
}

/// Executes one slot mutation (`Some` = put, `None` = take), flagging it
/// as a data race unless the acting thread's clock dominates the previous
/// conflicting access.
fn slot_access(m: &mut Model, idx: usize, tid: Option<usize>, put: Option<u64>) -> Option<u64> {
    if let Some(t) = tid {
        let ordered = match m.slots.get(idx).and_then(|s| s.last_access.as_ref()) {
            Some((prev, prev_clock)) if *prev != t => {
                m.clocks.get(t).is_some_and(|c| c.dominates(prev_clock))
            }
            _ => true,
        };
        if !ordered && m.race.is_none() {
            let kind = if put.is_some() { "put" } else { "take" };
            m.race = Some(format!(
                "slot {idx}: thread {t}'s {kind} is unordered against the previous access"
            ));
        }
    }
    let clock = tid.and_then(|t| m.clocks.get(t).cloned());
    let slot = m.slots.get_mut(idx)?;
    let out = match put {
        Some(v) => {
            slot.value = Some(v);
            None
        }
        None => slot.value.take(),
    };
    if let (Some(t), Some(c)) = (tid, clock) {
        slot.last_access = Some((t, c));
    }
    out
}

type ShimRing = RingCore<u64, ShimAtomic, ShimSlot>;

/// Producer program: waits for each replay epoch, pushes `1..=pushes`,
/// records the accepted tokens, and signals completion.
fn producer_loop(ctl: &Arc<Ctl>, ring: &Arc<ShimRing>, pushes: u64) {
    CURRENT_TID.with(|c| c.set(Some(PRODUCER)));
    let mut epoch_seen = 0u64;
    loop {
        {
            let mut m = lock(ctl);
            while m.epoch == epoch_seen && !m.shutdown {
                m = wait(ctl, m);
            }
            if m.shutdown {
                return;
            }
            epoch_seen = m.epoch;
        }
        let mut accepted = Vec::new();
        for token in 1..=pushes {
            if ring.try_push_core(token).is_ok() {
                accepted.push(token);
            }
        }
        let mut m = lock(ctl);
        m.accepted = accepted;
        if let Some(d) = m.done.get_mut(PRODUCER) {
            *d = true;
        }
        ctl.cv.notify_all();
    }
}

/// Consumer program: waits for each replay epoch, attempts `pops` pop
/// calls (scalar, or batch-amortized sweeps of up to `batch` elements
/// when configured), records the observed tokens, and signals completion.
fn consumer_loop(ctl: &Arc<Ctl>, ring: &Arc<ShimRing>, pops: u64, batch: Option<usize>) {
    CURRENT_TID.with(|c| c.set(Some(CONSUMER)));
    let mut epoch_seen = 0u64;
    loop {
        {
            let mut m = lock(ctl);
            while m.epoch == epoch_seen && !m.shutdown {
                m = wait(ctl, m);
            }
            if m.shutdown {
                return;
            }
            epoch_seen = m.epoch;
        }
        let mut popped = Vec::new();
        for _ in 0..pops {
            match batch {
                Some(max) => {
                    ring.try_pop_many_core(max, &mut |token| popped.push(token));
                }
                None => {
                    if let Some(token) = ring.try_pop_core() {
                        popped.push(token);
                    }
                }
            }
        }
        let mut m = lock(ctl);
        m.popped = popped;
        if let Some(d) = m.done.get_mut(CONSUMER) {
            *d = true;
        }
        ctl.cv.notify_all();
    }
}

/// Exhaustively explores every interleaving of the configured producer
/// and consumer programs (depth-first, deterministic), up to the optional
/// schedule budget, and reports coverage plus the first violation found.
///
/// The exploration runs a violating schedule's remaining steps to the end
/// (the programs always terminate), so a violation never wedges the
/// worker threads; it stops launching *new* schedules once one is found.
pub fn explore(cfg: &Config) -> Stats {
    let capacity = cfg.capacity.max(1);
    let ctl = Arc::new(Ctl {
        state: Mutex::new(Model {
            slots: vec![SlotModel::default(); capacity],
            weaken_tail_release: cfg.weaken_tail_release,
            weaken_head_release: cfg.weaken_head_release,
            ..Model::default()
        }),
        cv: Condvar::new(),
    });
    let ring = Arc::new(ShimRing::from_parts(
        ShimAtomic {
            ctl: Arc::clone(&ctl),
            var: HEAD,
        },
        ShimAtomic {
            ctl: Arc::clone(&ctl),
            var: TAIL,
        },
        (0..capacity)
            .map(|idx| ShimSlot {
                ctl: Arc::clone(&ctl),
                idx,
            })
            .collect(),
    ));

    let producer = {
        let (ctl, ring) = (Arc::clone(&ctl), Arc::clone(&ring));
        let pushes = cfg.pushes as u64;
        std::thread::spawn(move || producer_loop(&ctl, &ring, pushes))
    };
    let consumer = {
        let (ctl, ring) = (Arc::clone(&ctl), Arc::clone(&ring));
        let pops = cfg.pops as u64;
        let batch = cfg.consumer_batch;
        std::thread::spawn(move || consumer_loop(&ctl, &ring, pops, batch))
    };

    let mut stats = Stats::default();
    // DFS over schedules: each entry is (choice index, enabled count) at
    // that step. Backtracking bumps the deepest non-exhausted choice.
    let mut prefix: Vec<(usize, usize)> = Vec::new();
    'search: loop {
        reset_replay(&ctl, capacity, cfg);
        let depth = run_one_schedule(&ctl, &mut prefix, &mut stats);
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(depth);
        if let Some(v) = check_replay(&ctl, &ring) {
            stats.violation = Some(format!("schedule {:?}: {v}", choices(&prefix)));
            break;
        }
        if cfg.budget.is_some_and(|b| stats.schedules >= b) {
            break;
        }
        loop {
            match prefix.pop() {
                None => break 'search,
                Some((c, n)) if c + 1 < n => {
                    prefix.push((c + 1, n));
                    break;
                }
                Some(_) => {}
            }
        }
    }

    {
        let mut m = lock(&ctl);
        m.shutdown = true;
        ctl.cv.notify_all();
    }
    let _ = producer.join();
    let _ = consumer.join();
    stats
}

/// The thread choices of a schedule prefix, for violation reports.
fn choices(prefix: &[(usize, usize)]) -> Vec<usize> {
    prefix.iter().map(|&(c, _)| c).collect()
}

/// Rearms the model for the next replay and releases the workers.
fn reset_replay(ctl: &Ctl, capacity: usize, cfg: &Config) {
    let mut m = lock(ctl);
    m.epoch += 1;
    m.granted = None;
    m.parked = [false; THREADS];
    m.done = [false; THREADS];
    m.free_run = false;
    m.clocks = <[Clock; THREADS]>::default();
    m.atoms = <[AtomState; 2]>::default();
    m.slots = vec![SlotModel::default(); capacity];
    m.race = None;
    m.accepted = Vec::new();
    m.popped = Vec::new();
    m.weaken_tail_release = cfg.weaken_tail_release;
    m.weaken_head_release = cfg.weaken_head_release;
    ctl.cv.notify_all();
}

/// Runs one replay to completion, following `prefix` and extending it
/// greedily (first enabled thread) past its end. Returns the depth.
fn run_one_schedule(ctl: &Ctl, prefix: &mut Vec<(usize, usize)>, stats: &mut Stats) -> usize {
    let mut step = 0usize;
    loop {
        let mut m = lock(ctl);
        // Every live worker settles at its next rendezvous (or finishes);
        // only then is the enabled set well defined.
        while !(0..THREADS).all(|t| flag(&m.done, t) || flag(&m.parked, t)) {
            m = wait(ctl, m);
        }
        let enabled: Vec<usize> = (0..THREADS)
            .filter(|&t| flag(&m.parked, t) && !flag(&m.done, t))
            .collect();
        if enabled.is_empty() {
            return step;
        }
        let choice = match prefix.get(step) {
            Some(&(c, _)) => c,
            None => {
                prefix.push((0, enabled.len()));
                0
            }
        };
        let Some(&tid) = enabled.get(choice) else {
            // Unreachable for a deterministic system: a replayed prefix
            // always sees the same enabled sets. Ending the schedule is
            // the safe answer.
            return step;
        };
        m.granted = Some(tid);
        ctl.cv.notify_all();
        while m.granted.is_some() || !(flag(&m.parked, tid) || flag(&m.done, tid)) {
            m = wait(ctl, m);
        }
        step += 1;
        stats.steps += 1;
    }
}

fn flag(flags: &[bool; THREADS], tid: usize) -> bool {
    flags.get(tid).copied().unwrap_or(true)
}

/// Post-schedule verification: no data race, and after a sequential
/// free-run drain the consumer-side observations equal the accepted
/// tokens in push order (FIFO + conservation + no lost items).
fn check_replay(ctl: &Ctl, ring: &ShimRing) -> Option<String> {
    let (accepted, popped, race) = {
        let mut m = lock(ctl);
        m.free_run = true;
        (m.accepted.clone(), m.popped.clone(), m.race.clone())
    };
    if let Some(r) = race {
        return Some(format!("data race: {r}"));
    }
    let mut observed = popped;
    let limit = accepted.len() + 1;
    for _ in 0..limit {
        match ring.try_pop_core() {
            Some(token) => observed.push(token),
            None => break,
        }
    }
    if observed != accepted {
        return Some(format!(
            "queue invariant broken: accepted {accepted:?} but observed {observed:?}"
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, pushes: usize, pops: usize) -> Config {
        Config {
            capacity,
            pushes,
            pops,
            consumer_batch: None,
            budget: None,
            weaken_tail_release: false,
            weaken_head_release: false,
        }
    }

    #[test]
    fn exhaustive_small_config_is_clean_and_deterministic() {
        let a = explore(&cfg(1, 2, 2));
        assert_eq!(a.violation, None, "correct ring must verify clean");
        assert!(a.schedules > 100, "too few schedules: {}", a.schedules);
        let b = explore(&cfg(1, 2, 2));
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.max_depth, b.max_depth);
    }

    #[test]
    fn explorer_covers_ten_thousand_schedules() {
        let mut total = 0usize;
        for c in [
            cfg(1, 2, 2),
            Config {
                budget: Some(6000),
                ..cfg(2, 3, 3)
            },
            Config {
                budget: Some(6000),
                ..cfg(3, 4, 4)
            },
        ] {
            let stats = explore(&c);
            assert_eq!(
                stats.violation, None,
                "correct ring must verify clean under {c:?}"
            );
            assert!(stats.max_depth >= 4);
            total += stats.schedules;
        }
        assert!(total >= 10_000, "only {total} schedules explored");
    }

    #[test]
    fn batched_consumer_is_clean_across_twelve_thousand_schedules() {
        // The batch-amortized pop (`try_pop_many_core`) is the serve
        // intake's drain path; explore it over wraparound-forcing shapes
        // (capacity < pushes) so sweeps cross the index fold.
        let mut total = 0usize;
        for c in [
            Config {
                consumer_batch: Some(2),
                ..cfg(1, 2, 2)
            },
            Config {
                consumer_batch: Some(2),
                budget: Some(8000),
                ..cfg(2, 4, 3)
            },
            Config {
                consumer_batch: Some(3),
                budget: Some(8000),
                ..cfg(3, 4, 2)
            },
        ] {
            let stats = explore(&c);
            assert_eq!(
                stats.violation, None,
                "correct batch core must verify clean under {c:?}"
            );
            total += stats.schedules;
        }
        assert!(total >= 12_000, "only {total} schedules explored");
        // Determinism of the batched program, like the scalar one.
        let a = explore(&Config {
            consumer_batch: Some(2),
            ..cfg(1, 2, 2)
        });
        let b = explore(&Config {
            consumer_batch: Some(2),
            ..cfg(1, 2, 2)
        });
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn weakening_the_tail_release_is_caught() {
        // The production ring's `tail` publication is a Release store;
        // this run models it as Relaxed instead. The explorer must find
        // the resulting data race — this is the regression test that the
        // explorer can actually see ordering bugs.
        let stats = explore(&Config {
            weaken_tail_release: true,
            ..cfg(1, 2, 2)
        });
        let v = stats.violation.expect("weakened ordering must be caught");
        assert!(v.contains("data race"), "unexpected violation: {v}");
    }

    #[test]
    fn weakening_the_batched_head_release_is_caught() {
        // The batch pop frees a whole sweep of slots with one Release
        // store of `head`; this run models that store as Relaxed. With
        // capacity 1 and two pushes the producer must reuse slot 0, and
        // without the head edge its overwrite is unordered against the
        // consumer's take — the explorer must flag the race.
        let stats = explore(&Config {
            consumer_batch: Some(1),
            weaken_head_release: true,
            ..cfg(1, 2, 2)
        });
        let v = stats
            .violation
            .expect("weakened head ordering must be caught");
        assert!(v.contains("data race"), "unexpected violation: {v}");
    }

    #[test]
    fn budget_caps_the_search() {
        let stats = explore(&Config {
            budget: Some(5),
            ..cfg(2, 3, 3)
        });
        assert_eq!(stats.schedules, 5);
        assert_eq!(stats.violation, None);
    }

    /// Not a check — prints per-config coverage for the experiment log.
    /// Run with `cargo test -p scp-analyze interleave -- --ignored --nocapture`.
    #[test]
    #[ignore = "diagnostic probe, run manually"]
    fn print_state_space_sizes() {
        for c in [cfg(1, 2, 2), cfg(2, 3, 3), cfg(3, 4, 4)] {
            let c = Config {
                budget: Some(60_000),
                ..c
            };
            let stats = explore(&c);
            println!(
                "capacity={} pushes={} pops={}: {} schedules, {} steps, max depth {}",
                c.capacity, c.pushes, c.pops, stats.schedules, stats.steps, stats.max_depth
            );
        }
    }

    #[test]
    fn single_sided_programs_terminate() {
        let push_only = explore(&cfg(2, 3, 0));
        assert_eq!(push_only.violation, None);
        assert_eq!(push_only.schedules, 1, "one thread has one schedule");
        let pop_only = explore(&cfg(2, 0, 3));
        assert_eq!(pop_only.violation, None);
        assert_eq!(pop_only.schedules, 1);
    }
}
