//! Static atomic happens-before pairing over the masked source.
//!
//! The interleave explorer ([`crate::interleave`]) *dynamically* checks
//! the two ring protocols by enumerating schedules; this pass is its
//! static complement for every atomic in the workspace. It indexes every
//! atomic access — loads, stores and read-modify-writes that pass a
//! literal `Ordering::` argument — attributes each to a field or binding,
//! and denies unpaired synchronization (`atomic-unpaired`):
//!
//! * a Release-class **write** (`store`/RMW with `Release`, `AcqRel` or
//!   `SeqCst`) on a field with no Acquire-class reader of the same field;
//! * an Acquire-class **read** (`load`/RMW with `Acquire`, `AcqRel` or
//!   `SeqCst`) on a field that is only ever written `Relaxed` (or never
//!   written) — the acquire has nothing to synchronize with;
//! * mixed `SeqCst` and fully-`Relaxed` accesses on one field — one side
//!   is paying for an ordering the other side ignores.
//!
//! **Attribution.** Accesses are keyed per *file* by field name: a
//! receiver ending in `.name` (e.g. `self.tail`, `slot.seq`) keys on
//! `name`, and a bare identifier keys on itself when the file declares it
//! with an atomic type (a `name: &AtomicU64` parameter, a `static`, a
//! direct `let name = AtomicU64::new(..)`). Handle types that share one
//! underlying atomic (the batch ring's producer and consumer both hold
//! `closed`) therefore land in the same pool, which is exactly the pair
//! the check wants to see. Receivers the scanner cannot name (a closure
//! parameter, a call result) are indexed but not paired — skipping is the
//! sound direction for a linter: it can miss a pair, it cannot invent an
//! unpaired finding for a nameable field. Accesses whose `Ordering` is a
//! runtime variable (the interleave shim) contribute nothing.
//!
//! The declared-field index (`(type name, field name)`, from `struct`
//! bodies) and the per-access enclosing `impl` type are kept alongside
//! for reports and for the property tests that pin mask alignment and
//! re-parse stability.

use crate::files::{FileKind, SourceFile};
use crate::rules::Finding;
use crate::syntax::{self, at, sub, tail, Item, ItemKind};

/// Files exempt from pairing: the interleaving explorer interprets
/// `Ordering` values handed to its shim, so its accesses are the model,
/// not the protocol.
pub const ATOMIC_PAIRING_EXEMPT: &[&str] = &["crates/analyze/src/interleave.rs"];

/// Memory-ordering argument of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mo {
    /// `Ordering::Relaxed`
    Relaxed,
    /// `Ordering::Acquire`
    Acquire,
    /// `Ordering::Release`
    Release,
    /// `Ordering::AcqRel`
    AcqRel,
    /// `Ordering::SeqCst`
    SeqCst,
}

impl Mo {
    fn parse(name: &str) -> Option<Self> {
        match name {
            "Relaxed" => Some(Self::Relaxed),
            "Acquire" => Some(Self::Acquire),
            "Release" => Some(Self::Release),
            "AcqRel" => Some(Self::AcqRel),
            "SeqCst" => Some(Self::SeqCst),
            _ => None,
        }
    }

    /// Variant name, for messages.
    pub fn name(self) -> &'static str {
        match self {
            Self::Relaxed => "Relaxed",
            Self::Acquire => "Acquire",
            Self::Release => "Release",
            Self::AcqRel => "AcqRel",
            Self::SeqCst => "SeqCst",
        }
    }
}

/// What an access does to the atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A pure read (`load`).
    Load,
    /// A pure write (`store`).
    Store,
    /// A read-modify-write (`swap`, `fetch_*`, `compare_exchange*`).
    Rmw,
}

/// Atomic method names the scanner recognizes, with their op kind.
const ATOMIC_OPS: &[(&str, OpKind)] = &[
    ("load", OpKind::Load),
    ("store", OpKind::Store),
    ("swap", OpKind::Rmw),
    ("fetch_add", OpKind::Rmw),
    ("fetch_sub", OpKind::Rmw),
    ("fetch_and", OpKind::Rmw),
    ("fetch_or", OpKind::Rmw),
    ("fetch_xor", OpKind::Rmw),
    ("fetch_nand", OpKind::Rmw),
    ("fetch_max", OpKind::Rmw),
    ("fetch_min", OpKind::Rmw),
    ("fetch_update", OpKind::Rmw),
    ("compare_exchange", OpKind::Rmw),
    ("compare_exchange_weak", OpKind::Rmw),
];

/// `std::sync::atomic` type names used to recognize declared fields and
/// bindings.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// One atomic access with a literal `Ordering::` argument.
#[derive(Debug, Clone)]
pub struct AtomicAccess {
    /// 1-based line of the method name.
    pub line: usize,
    /// The dotted receiver text as scanned (e.g. `self.tail`), possibly
    /// just the nameable tail of a longer chain.
    pub receiver: String,
    /// Field/binding name the access is keyed on for pairing; `None`
    /// when the receiver could not be named.
    pub field: Option<String>,
    /// Name of the `impl`/`trait` owning the enclosing function, when
    /// the access sits in an associated fn.
    pub owner: Option<String>,
    /// What the access does.
    pub op: OpKind,
    /// Every literal ordering the call passes (two for
    /// `compare_exchange`/`fetch_update`).
    pub orderings: Vec<Mo>,
    /// Whether the access sits in `#[cfg(test)]` code.
    pub in_test: bool,
}

/// Everything the scanner extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileAtomics {
    /// Declared atomic struct fields, as `(type name, field name)`.
    pub fields: Vec<(String, String)>,
    /// Bare identifiers declared with an atomic type (parameters,
    /// statics, direct `let` initializers).
    pub bindings: Vec<String>,
    /// Every recognized access, in source order.
    pub accesses: Vec<AtomicAccess>,
}

/// Indexes one file: declared atomic fields, atomic bindings, and every
/// access that passes a literal `Ordering::`.
pub fn index_file(file: &SourceFile) -> FileAtomics {
    let mut out = FileAtomics::default();
    if !matches!(file.kind, FileKind::Library | FileKind::Binary) {
        return out;
    }
    let code = file.masked.code.as_str();
    let parsed = syntax::parse(&file.masked);
    collect_fields(code, &parsed.items, &mut out.fields);
    collect_bindings(code, &mut out.bindings);

    let bytes = code.as_bytes();
    for (op_name, op) in ATOMIC_OPS {
        for pos in token_positions_str(code, op_name) {
            // `.name` directly after a receiver, `(` directly after.
            let mut open = pos + op_name.len();
            while at(bytes, open) == b' ' {
                open += 1;
            }
            if at(bytes, open) != b'(' {
                continue;
            }
            let Some(dot) = dot_before(bytes, pos) else {
                continue;
            };
            let close = match_paren(bytes, open);
            let orderings = orderings_in(sub(code, open, close));
            if orderings.is_empty() {
                continue;
            }
            let line = sub(code, 0, pos).matches('\n').count() + 1;
            let (receiver, segments, follows_expr) = receiver_before(code, dot);
            let field = match segments.last() {
                Some(last) if segments.len() >= 2 || follows_expr => Some(last.clone()),
                Some(last) if out.bindings.contains(last) => Some(last.clone()),
                _ => None,
            };
            out.accesses.push(AtomicAccess {
                line,
                receiver,
                field,
                owner: owner_of_offset(&parsed.fns, pos),
                op: *op,
                orderings,
                in_test: file.is_test_line(line),
            });
        }
    }
    out.accesses.sort_by_key(|a| a.line);
    out
}

/// 1-based lines of non-test accesses that are pure `Relaxed` loads —
/// the atomic taint seeds consumed by [`crate::taint`].
pub(crate) fn relaxed_load_lines(file: &SourceFile) -> Vec<usize> {
    index_file(file)
        .accesses
        .iter()
        .filter(|a| !a.in_test && a.op == OpKind::Load && a.orderings == [Mo::Relaxed])
        .map(|a| a.line)
        .collect()
}

/// Runs the pairing check over one file, returning raw (pre-pragma)
/// `atomic-unpaired` findings.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if ATOMIC_PAIRING_EXEMPT.contains(&file.rel_path.as_str()) {
        return findings;
    }
    let index = index_file(file);
    // Pool accesses per field name; unresolved receivers are not paired.
    let mut pools: std::collections::BTreeMap<&str, Vec<&AtomicAccess>> =
        std::collections::BTreeMap::new();
    for a in &index.accesses {
        if a.in_test {
            continue;
        }
        if let Some(field) = a.field.as_deref() {
            pools.entry(field).or_default().push(a);
        }
    }
    for (field, accesses) in pools {
        let release_write = |a: &AtomicAccess| {
            matches!(a.op, OpKind::Store | OpKind::Rmw)
                && a.orderings
                    .iter()
                    .any(|o| matches!(o, Mo::Release | Mo::AcqRel | Mo::SeqCst))
        };
        let acquire_read = |a: &AtomicAccess| {
            matches!(a.op, OpKind::Load | OpKind::Rmw)
                && a.orderings
                    .iter()
                    .any(|o| matches!(o, Mo::Acquire | Mo::AcqRel | Mo::SeqCst))
        };
        let has_release_write = accesses.iter().any(|&a| release_write(a));
        let has_acquire_read = accesses.iter().any(|&a| acquire_read(a));
        let has_seqcst = accesses.iter().any(|a| a.orderings.contains(&Mo::SeqCst));
        let all_relaxed = |a: &AtomicAccess| a.orderings.iter().all(|o| *o == Mo::Relaxed);
        let has_fully_relaxed = accesses.iter().any(|&a| all_relaxed(a));
        let mut emit = |a: &AtomicAccess, message: String| {
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: a.line,
                rule: "atomic-unpaired",
                message,
                snippet: file
                    .lines
                    .get(a.line.saturating_sub(1))
                    .map(|l| l.trim().to_owned())
                    .unwrap_or_default(),
                suppressed: false,
            });
        };
        for a in accesses {
            if release_write(a) && !has_acquire_read {
                emit(
                    a,
                    format!(
                        "`{}` is written with {} ordering but no Acquire-side read of \
                         `{field}` exists in this file; the release publishes to nobody",
                        a.receiver,
                        a.orderings
                            .iter()
                            .map(|o| o.name())
                            .collect::<Vec<_>>()
                            .join("/"),
                    ),
                );
            }
            if acquire_read(a) && !has_release_write {
                emit(
                    a,
                    format!(
                        "`{}` is read with {} ordering but `{field}` is never written with \
                         Release-class ordering in this file; the acquire synchronizes with nothing",
                        a.receiver,
                        a.orderings
                            .iter()
                            .map(|o| o.name())
                            .collect::<Vec<_>>()
                            .join("/"),
                    ),
                );
            }
            if has_seqcst && has_fully_relaxed && a.orderings.contains(&Mo::SeqCst) {
                emit(
                    a,
                    format!(
                        "`{field}` mixes SeqCst and fully-Relaxed accesses; one side pays for \
                         an ordering the other ignores"
                    ),
                );
            }
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.message.cmp(&b.message)));
    findings
}

// ------------------------------------------------------------- extraction

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte offsets where `tok` occurs in `code` with non-identifier bytes on
/// both sides.
fn token_positions_str(code: &str, tok: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = tail(code, from).find(tok) {
        let start = from + off;
        let end = start + tok.len();
        let left_ok = start == 0 || !is_ident(at(bytes, start - 1));
        let right_ok = end >= bytes.len() || !is_ident(at(bytes, end));
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// Index of the `.` introducing the method at `pos`, skipping whitespace
/// (rustfmt puts chained calls on their own lines).
fn dot_before(bytes: &[u8], pos: usize) -> Option<usize> {
    let mut i = pos;
    while i > 0 && at(bytes, i - 1).is_ascii_whitespace() {
        i -= 1;
    }
    if i > 0 && at(bytes, i - 1) == b'.' {
        Some(i - 1)
    } else {
        None
    }
}

/// Index just past the `)` matching the `(` at `open` (depth-counted on
/// the code mask, so parens in literals cannot confuse it).
fn match_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match at(bytes, j) {
            b'(' => depth += 1,
            b')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len()
}

/// Every `Ordering::<Variant>` literal inside one argument list.
fn orderings_in(args: &str) -> Vec<Mo> {
    let bytes = args.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    const PREFIX: &str = "Ordering::";
    while let Some(off) = tail(args, from).find(PREFIX) {
        let start = from + off + PREFIX.len();
        let mut end = start;
        while end < bytes.len() && is_ident(at(bytes, end)) {
            end += 1;
        }
        if let Some(mo) = Mo::parse(sub(args, start, end)) {
            out.push(mo);
        }
        from = start;
    }
    out
}

/// Walks the dotted receiver chain left of the `.` at `dot`. Returns the
/// joined receiver text, its identifier segments in source order, and
/// whether the chain continues left into a non-identifier expression (a
/// call result or an index), which makes the last segment a field
/// projection even when it is the only segment collected.
fn receiver_before(code: &str, dot: usize) -> (String, Vec<String>, bool) {
    let bytes = code.as_bytes();
    let mut segments: Vec<String> = Vec::new();
    let mut follows_expr = false;
    let mut i = dot;
    loop {
        // Skip whitespace between the `.` and the segment before it.
        while i > 0 && at(bytes, i - 1).is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            break;
        }
        let prev = at(bytes, i - 1);
        if prev == b')' || prev == b']' {
            follows_expr = true;
            break;
        }
        if !is_ident(prev) {
            break;
        }
        let end = i;
        while i > 0 && is_ident(at(bytes, i - 1)) {
            i -= 1;
        }
        segments.push(sub(code, i, end).to_owned());
        // Continue only through another `.`.
        let mut j = i;
        while j > 0 && at(bytes, j - 1).is_ascii_whitespace() {
            j -= 1;
        }
        if j > 0 && at(bytes, j - 1) == b'.' {
            i = j - 1;
        } else {
            break;
        }
    }
    segments.reverse();
    (segments.join("."), segments, follows_expr)
}

/// The enclosing `impl`/`trait` name of the innermost function covering
/// byte `offset`, when that function is associated.
fn owner_of_offset(fns: &[syntax::FnItem], offset: usize) -> Option<String> {
    let mut best: Option<&syntax::FnItem> = None;
    for f in fns {
        if f.span.0 <= offset && offset < f.span.1 {
            // Functions are flattened in pre-order; a later covering span
            // is more deeply nested.
            best = Some(f);
        }
    }
    best.and_then(|f| f.owner.clone())
}

/// Collects `(type, field)` pairs for fields declared with an atomic
/// type (possibly under wrappers like `CachePadded<AtomicU64>`).
fn collect_fields(code: &str, items: &[Item], out: &mut Vec<(String, String)>) {
    for item in items {
        if item.kind == ItemKind::Type && !item.cfg_test {
            if let Some((lo, hi)) = item.body {
                for line in sub(code, lo, hi).lines() {
                    for ty in ATOMIC_TYPES {
                        for pos in token_positions_str(line, ty) {
                            if let Some(name) = binding_for_type_token(line, pos) {
                                let pair = (item.name.clone(), name);
                                if !out.contains(&pair) {
                                    out.push(pair);
                                }
                            }
                        }
                    }
                }
            }
        }
        collect_fields(code, &item.children, out);
    }
}

/// Collects bare identifiers the file declares with an atomic type:
/// parameters and statics (`name: &AtomicU64`), and direct initializers
/// (`let name = AtomicU64::new(..)`).
fn collect_bindings(code: &str, out: &mut Vec<String>) {
    for line in code.lines() {
        for ty in ATOMIC_TYPES {
            for pos in token_positions_str(line, ty) {
                if let Some(name) = binding_for_type_token(line, pos) {
                    if !out.contains(&name) {
                        out.push(name);
                    }
                }
            }
        }
    }
}

/// Resolves the identifier a type token at `pos` declares, peeling
/// generic wrappers (`CachePadded<AtomicU64>`, `Arc<CachePadded<..>>`)
/// before delegating to the shared binding walker.
fn binding_for_type_token(line: &str, pos: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = pos;
    loop {
        let before = sub(line, 0, i).trim_end();
        if !before.ends_with('<') {
            break;
        }
        // Strip the `<`, the wrapper ident, and any `path::` prefix.
        let mut j = before.len() - 1;
        while j > 0 && is_ident(at(bytes, j - 1)) {
            j -= 1;
        }
        while j >= 2 && sub(line, j - 2, j) == "::" {
            j -= 2;
            while j > 0 && is_ident(at(bytes, j - 1)) {
                j -= 1;
            }
        }
        if j == i {
            break;
        }
        i = j;
    }
    crate::rules::binding_before(line, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::{cfg_test_lines, FileKind, SourceFile};
    use crate::lexer::mask;

    fn file(path: &str, src: &str) -> SourceFile {
        let masked = mask(src);
        let in_test = cfg_test_lines(&masked);
        SourceFile {
            rel_path: path.into(),
            crate_name: "scp-serve".into(),
            kind: FileKind::Library,
            in_test,
            masked,
            lines: src.lines().map(str::to_owned).collect(),
        }
    }

    fn lib_file(src: &str) -> SourceFile {
        file("crates/serve/src/x.rs", src)
    }

    #[test]
    fn indexes_fields_bindings_and_accesses() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
pub struct Ring { tail: CachePadded<AtomicU64> }
impl Ring {
    pub fn push(&self) {
        self.tail.store(1, Ordering::Release);
    }
    pub fn read(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }
}
pub fn wait(stop: &AtomicU64) -> u64 {
    stop.load(Ordering::Acquire)
}
";
        let ix = index_file(&lib_file(src));
        assert_eq!(ix.fields, vec![("Ring".to_owned(), "tail".to_owned())]);
        assert!(ix.bindings.contains(&"stop".to_owned()));
        assert_eq!(ix.accesses.len(), 3);
        assert_eq!(ix.accesses[0].field.as_deref(), Some("tail"));
        assert_eq!(ix.accesses[0].owner.as_deref(), Some("Ring"));
        assert_eq!(ix.accesses[0].op, OpKind::Store);
        assert_eq!(ix.accesses[0].orderings, vec![Mo::Release]);
        assert_eq!(ix.accesses[2].field.as_deref(), Some("stop"));
        assert_eq!(ix.accesses[2].owner, None);
    }

    #[test]
    fn multiline_compare_exchange_collects_both_orderings() {
        let src = "\
pub fn claim(quota: &AtomicU64) {
    let _ = quota.compare_exchange(
        1,
        2,
        Ordering::AcqRel,
        Ordering::Relaxed,
    );
}
";
        let ix = index_file(&lib_file(src));
        assert_eq!(ix.accesses.len(), 1);
        assert_eq!(ix.accesses[0].op, OpKind::Rmw);
        assert_eq!(ix.accesses[0].orderings, vec![Mo::AcqRel, Mo::Relaxed]);
    }

    #[test]
    fn variable_orderings_and_plain_methods_are_ignored() {
        let src = "\
pub fn shim(a: &AtomicU64, o: Ordering) -> u64 {
    let v = a.load(o);
    map.load(\"key\");
    v
}
";
        let ix = index_file(&lib_file(src));
        assert!(ix.accesses.is_empty());
    }

    #[test]
    fn unresolved_receivers_are_indexed_but_not_paired() {
        let src = "\
pub fn f(xs: &[CachePadded<AtomicU64>]) {
    xs.iter().for_each(|c| {
        c.store(1, Ordering::Release);
    });
}
";
        let sf = lib_file(src);
        let ix = index_file(&sf);
        assert_eq!(ix.accesses.len(), 1);
        assert_eq!(ix.accesses[0].field, None);
        assert!(check_file(&sf).is_empty());
    }

    #[test]
    fn indexed_element_accesses_key_on_the_field() {
        let src = "\
pub fn f(&self) {
    self.slots[i].seq.store(1, Ordering::Release);
    let _ = self.slots[j].seq.load(Ordering::Acquire);
}
";
        let ix = index_file(&lib_file(src));
        assert_eq!(ix.accesses.len(), 2);
        assert_eq!(ix.accesses[0].field.as_deref(), Some("seq"));
        assert_eq!(ix.accesses[1].field.as_deref(), Some("seq"));
    }
}
