//! Workspace discovery, file classification and `#[cfg(test)]` regions.
//!
//! Rules need three pieces of context before they can decide whether to
//! fire: which *crate* a file belongs to, what *kind* of file it is
//! (library, binary, integration test, bench, example) and which *lines*
//! sit inside `#[cfg(test)]` items. This module computes all three.

use crate::lexer::{mask, MaskedSource};
use crate::syntax::{at, sub, tail};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What a `.rs` file is for. Panic-safety rules only police library and
/// binary code; tests, benches and examples may panic freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` code compiled into a library.
    Library,
    /// `src/bin/` or binary-target code.
    Binary,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// One source file, masked and classified.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Package the file belongs to (e.g. `scp-core`), derived from layout.
    pub crate_name: String,
    /// File role.
    pub kind: FileKind,
    /// Code/comment masks (see [`crate::lexer`]).
    pub masked: MaskedSource,
    /// `in_test[i]` is true when 0-based line `i` is inside a
    /// `#[cfg(test)]` item (or the whole file is test-only).
    pub in_test: Vec<bool>,
    /// Original lines, for report snippets.
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Builds a classified, masked source file from in-memory text, as if
    /// it lived at workspace-relative `rel_path`. This is how golden tests
    /// feed the rule engine snippets without touching the filesystem.
    pub fn from_source(rel_path: &str, text: &str) -> Self {
        let (crate_name, kind) = classify(rel_path);
        let masked = mask(text);
        let in_test = cfg_test_lines(&masked);
        Self {
            rel_path: rel_path.to_owned(),
            crate_name,
            kind,
            masked,
            in_test,
            lines: text.lines().map(str::to_owned).collect(),
        }
    }

    /// Whether 1-based `line` is test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.kind == FileKind::Test
            || self.kind == FileKind::Bench
            || self.kind == FileKind::Example
            || self
                .in_test
                .get(line.saturating_sub(1))
                .copied()
                .unwrap_or(false)
    }
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every workspace `.rs` file under `root`, classified and
/// masked, in deterministic (sorted) path order.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    paths.into_iter().map(|p| load_source(root, &p)).collect()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load_source(root: &Path, path: &Path) -> io::Result<SourceFile> {
    let text = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(SourceFile::from_source(&rel, &text))
}

/// Derives `(crate name, kind)` from the workspace-relative path.
fn classify(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (String, &[&str]) =
        if parts.first() == Some(&"crates") && parts.len() > 2 {
            (
                format!("scp-{}", parts.get(1).copied().unwrap_or_default()),
                parts.get(2..).unwrap_or(&[]),
            )
        } else {
            ("secure-cache-provision".to_owned(), parts.as_slice())
        };
    let kind = match rest.first().copied() {
        Some("tests") => FileKind::Test,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        Some("src") if rest.get(1).copied() == Some("bin") => FileKind::Binary,
        Some("src") if rest.last().is_some_and(|f| f == &"main.rs") => FileKind::Binary,
        _ => FileKind::Library,
    };
    (crate_name, kind)
}

/// Marks lines covered by `#[cfg(test)]` items.
///
/// The scan runs on the code mask, so attribute text inside strings or
/// comments can never open a region. After each attribute the next `{`
/// opens the item body; its matching `}` (brace depth on masked code)
/// closes the region. An attribute followed by `;` before any `{` (e.g.
/// `#[cfg(test)] mod tests;`) covers only its own line.
pub(crate) fn cfg_test_lines(masked: &MaskedSource) -> Vec<bool> {
    let code = &masked.code;
    let n_lines = code.lines().count();
    let mut in_test = vec![false; n_lines];
    let bytes = code.as_bytes();
    let mut search_from = 0usize;
    while let Some(off) = tail(code, search_from)
        .find("#[cfg(test)]")
        .or_else(|| tail(code, search_from).find("#![cfg(test)]"))
    {
        let start = search_from + off;
        let attr_end = start + tail(code, start).find(']').map_or(0, |p| p + 1);
        // Find the item body: first `{` before a `;` at the same level.
        let mut i = attr_end;
        let mut open = None;
        while i < bytes.len() {
            match at(bytes, i) {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let end = match open {
            Some(open_at) => {
                let mut depth = 0usize;
                let mut j = open_at;
                loop {
                    if j >= bytes.len() {
                        break bytes.len();
                    }
                    match at(bytes, j) {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break j + 1;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            None => i.min(bytes.len()),
        };
        let first_line = sub(code, 0, start).matches('\n').count();
        let last_line = sub(code, 0, end).matches('\n').count();
        for line in in_test.iter_mut().take(last_line + 1).skip(first_line) {
            *line = true;
        }
        search_from = end.max(start + 1);
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/theorem.rs"),
            ("scp-core".into(), FileKind::Library)
        );
        assert_eq!(
            classify("crates/repro/src/bin/fig4.rs"),
            ("scp-repro".into(), FileKind::Binary)
        );
        assert_eq!(
            classify("crates/cluster/tests/cluster_properties.rs"),
            ("scp-cluster".into(), FileKind::Test)
        );
        assert_eq!(
            classify("crates/bench/benches/samplers.rs"),
            ("scp-bench".into(), FileKind::Bench)
        );
        assert_eq!(
            classify("src/lib.rs"),
            ("secure-cache-provision".into(), FileKind::Library)
        );
        assert_eq!(
            classify("tests/determinism.rs"),
            ("secure-cache-provision".into(), FileKind::Test)
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            ("secure-cache-provision".into(), FileKind::Example)
        );
    }

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let masked = mask(src);
        let flags = cfg_test_lines(&masked);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_outlined_module_covers_one_line() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let flags = cfg_test_lines(&mask(src));
        assert!(flags[0]);
        assert!(!flags[2]);
    }

    #[test]
    fn attribute_in_string_does_not_open_region() {
        let src = "let s = \"#[cfg(test)]\";\nfn live() {}\n";
        let flags = cfg_test_lines(&mask(src));
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn braces_in_strings_do_not_confuse_matching() {
        let src = "#[cfg(test)]\nmod tests {\n    let s = \"}\";\n    fn t() {}\n}\nfn live() {}\n";
        let flags = cfg_test_lines(&mask(src));
        assert!(flags[..5].iter().all(|&f| f), "{flags:?}");
        assert!(!flags[5]);
    }

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }
}
