//! The rule set and the engine that runs it over masked sources.
//!
//! Every rule scans the *code mask* of a file (see [`crate::lexer`]), so
//! comments and literals are invisible to it. Rules fall into two
//! enforcement classes:
//!
//! * **deny** rules must have zero unsuppressed findings — they protect
//!   the determinism guarantees PR 1 made headline claims about;
//! * **ratcheted** rules are enforced against the committed
//!   `analyze-baseline.json`: existing debt is grandfathered per
//!   `(file, rule)`, any count increase fails (see [`crate::baseline`]).
//!
//! | rule | class | fires on |
//! |------|-------|----------|
//! | `hash-iteration` | deny | iterating a `HashMap`/`HashSet` binding in `scp-core`/`scp-cluster`/`scp-sim`/`scp-cache` library code |
//! | `wall-clock` | deny | `Instant::now`/`SystemTime`/`.elapsed()` outside the timing whitelist |
//! | `env-entropy` | deny | `RandomState`, `env::var`, other ambient entropy |
//! | `unsafe-hygiene` | deny | an `unsafe` token without a `// SAFETY:` comment nearby |
//! | `invalid-pragma` | deny | malformed `scp-allow` comment |
//! | `unused-allow` | deny | `scp-allow` that suppressed nothing |
//! | `ordering-comment` | deny | atomic `Ordering::` use without an `// ORDERING:` justification |
//! | `concurrency-primitive` | deny | locks outside the lock whitelist, `spawn` outside the spawn whitelist, `static mut` anywhere |
//! | `narrow-cast` | deny | narrowing `as` cast (`as u32` & co.) in library code |
//! | `panic-path` | ratcheted | `unwrap`/`expect`/`panic!`-family in library code |
//! | `slice-index` | ratcheted | `expr[...]` indexing in library code |
//! | `float-eq` | ratcheted | `==`/`!=` against a float literal |
//! | `nondet-taint` | deny | a `pub` fn entering the determinism surface (see [`crate::taint`]) |
//! | `atomic-unpaired` | deny | unpaired Release/Acquire (or mixed SeqCst/Relaxed) on one atomic field (see [`crate::atomics`]) |

use crate::files::{FileKind, SourceFile};
use crate::pragma::parse_pragmas;
use crate::syntax::{at, sub, tail};

/// Enforcement class of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enforcement {
    /// Zero unsuppressed findings allowed.
    Deny,
    /// Bounded per `(file, rule)` by the committed baseline.
    Ratcheted,
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule name (used in pragmas and the baseline).
    pub name: &'static str,
    /// Enforcement class.
    pub enforcement: Enforcement,
    /// One-line description for reports.
    pub description: &'static str,
}

/// All rules, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-iteration",
        enforcement: Enforcement::Deny,
        description: "HashMap/HashSet iteration order must not reach results",
    },
    RuleInfo {
        name: "wall-clock",
        enforcement: Enforcement::Deny,
        description: "wall-clock reads outside the timing whitelist",
    },
    RuleInfo {
        name: "env-entropy",
        enforcement: Enforcement::Deny,
        description: "environment-derived entropy (RandomState, env::var, ...)",
    },
    RuleInfo {
        name: "unsafe-hygiene",
        enforcement: Enforcement::Deny,
        description: "`unsafe` without an adjacent `// SAFETY:` comment",
    },
    RuleInfo {
        name: "invalid-pragma",
        enforcement: Enforcement::Deny,
        description: "malformed scp-allow pragma",
    },
    RuleInfo {
        name: "unused-allow",
        enforcement: Enforcement::Deny,
        description: "scp-allow pragma that suppresses nothing",
    },
    RuleInfo {
        name: "ordering-comment",
        enforcement: Enforcement::Deny,
        description: "atomic `Ordering::` use without an `// ORDERING:` justification",
    },
    RuleInfo {
        name: "concurrency-primitive",
        enforcement: Enforcement::Deny,
        description:
            "locks/threads (`Mutex`, `RwLock`, `spawn`) outside their whitelists; `static mut` anywhere",
    },
    RuleInfo {
        name: "narrow-cast",
        enforcement: Enforcement::Deny,
        description: "narrowing `as` cast in library code; prefer `try_from` or a lossless `from`",
    },
    RuleInfo {
        name: "panic-path",
        enforcement: Enforcement::Ratcheted,
        description: "unwrap/expect/panic! in non-test library code",
    },
    RuleInfo {
        name: "slice-index",
        enforcement: Enforcement::Ratcheted,
        description: "panicking slice/array indexing in non-test library code",
    },
    RuleInfo {
        name: "float-eq",
        enforcement: Enforcement::Ratcheted,
        description: "exact ==/!= comparison against a float literal",
    },
    RuleInfo {
        name: "nondet-taint",
        enforcement: Enforcement::Deny,
        description:
            "pub fn entered the determinism surface (nondeterminism can transitively reach it)",
    },
    RuleInfo {
        name: "atomic-unpaired",
        enforcement: Enforcement::Deny,
        description: "atomic field with unpaired Release/Acquire (or mixed SeqCst/Relaxed) orderings",
    },
];

/// Rules a pragma may name (everything except the pragma meta-rules,
/// which would otherwise be able to silence themselves).
pub fn suppressible_rules() -> Vec<&'static str> {
    RULES
        .iter()
        .map(|r| r.name)
        .filter(|n| *n != "invalid-pragma" && *n != "unused-allow")
        .collect()
}

/// Looks up a rule's static info.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Crates whose library code the `hash-iteration` rule polices. Cache
/// *membership* tests are fine everywhere; these are the crates whose
/// outputs feed journals and reports, where iteration order could leak.
const HASH_ITER_CRATES: &[&str] = &["scp-core", "scp-cluster", "scp-sim", "scp-cache"];

/// Files allowed to read wall clocks: the runner measures wall time for
/// journal metadata explicitly, the bench harness is a timing tool, and
/// the serving engine's clock module is the single place the live path
/// reads wall time (everything else in `crates/serve` must go through
/// it, so shedding and reports stay a function of logical time).
const WALL_CLOCK_WHITELIST: &[&str] = &[
    "crates/sim/src/runner.rs",
    "crates/bench/",
    "crates/serve/src/clock.rs",
];

/// Files allowed to use blocking lock types (`Mutex`, `RwLock`,
/// `Condvar`). Only the interleaving explorer, which *models* a
/// scheduler and needs a real lock/condvar pair to sequence its shim
/// threads. The serving pipeline (loadgen, the SPSC ring, the batch
/// rings) is lock-free by design — PR 8 removed the
/// `Mutex<VecDeque> + Condvar` intake funnel, and this list is what
/// keeps a lock from quietly coming back: a `Mutex` reappearing in
/// `crates/serve/src/loadgen.rs` fires `concurrency-primitive`.
const LOCK_WHITELIST: &[&str] = &["crates/analyze/src/interleave.rs"];

/// Files allowed to start threads (`thread::spawn` / scoped spawns).
/// Everything else must be single-threaded: the determinism claims
/// hinge on thread interactions being confined to the audited fan-out
/// sites (the sweep/runner pool, the load generator's pipeline, and the
/// interleaving explorer's shim threads). `static mut` is never
/// whitelisted — an unsynchronized global is wrong everywhere.
const SPAWN_WHITELIST: &[&str] = &[
    "crates/sim/src/runner.rs",
    "crates/sim/src/sweep.rs",
    "crates/serve/src/loadgen.rs",
    "crates/analyze/src/interleave.rs",
];

/// Files exempt from `ordering-comment`: the interleaving explorer
/// *interprets* `Ordering` values handed to its shim (matching on every
/// variant), so per-use justifications would be noise there. Real atomic
/// call sites — spsc.rs, loadgen.rs — still justify every ordering.
const ORDERING_COMMENT_EXEMPT: &[&str] = &["crates/analyze/src/interleave.rs"];

/// One finding, before suppression/baseline classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line.
    pub snippet: String,
    /// Suppressed by an `scp-allow` pragma.
    pub suppressed: bool,
}

/// Runs every line rule over one file, applies its pragmas, and reports
/// pragma-hygiene findings alongside the code findings. The full
/// workspace pipeline ([`crate::analyze_workspace`]) instead collects
/// raw findings from every pass ([`check_file_raw`], the atomics and
/// taint passes) and applies pragmas once over the merged set, so a
/// pragma can target any rule's finding and unused-pragma detection sees
/// everything.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    apply_pragmas(file, check_file_raw(file))
}

/// Runs every line rule over one file, returning raw findings with no
/// pragma processing.
pub(crate) fn check_file_raw(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code_lines = file.masked.code_lines();
    let comment_lines = file.masked.comment_lines();

    let hash_names = hash_bound_names(&code_lines);
    for (idx, line) in code_lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        let mut emit = |rule: &'static str, message: String| {
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: lineno,
                rule,
                message,
                snippet: file
                    .lines
                    .get(idx)
                    .map(|l| l.trim().to_owned())
                    .unwrap_or_default(),
                suppressed: false,
            });
        };

        if library_code(file.kind) {
            check_panic_path(line, &mut emit);
            check_slice_index(line, &mut emit);
            check_float_eq(line, &mut emit);
            check_narrow_cast(line, &mut emit);
            if HASH_ITER_CRATES.contains(&file.crate_name.as_str()) {
                check_hash_iteration(line, &hash_names, &mut emit);
            }
            if !WALL_CLOCK_WHITELIST
                .iter()
                .any(|w| file.rel_path.starts_with(w) || file.rel_path == *w)
            {
                check_wall_clock(line, &mut emit);
            }
            check_concurrency(
                line,
                LOCK_WHITELIST.contains(&file.rel_path.as_str()),
                SPAWN_WHITELIST.contains(&file.rel_path.as_str()),
                &mut emit,
            );
            if !ORDERING_COMMENT_EXEMPT.contains(&file.rel_path.as_str()) {
                check_ordering_comment(line, idx, &code_lines, &comment_lines, &mut emit);
            }
            check_env_entropy(line, &mut emit);
        }
        check_unsafe(line, idx, &comment_lines, &mut emit);
    }

    findings
}

fn library_code(kind: FileKind) -> bool {
    matches!(kind, FileKind::Library | FileKind::Binary)
}

/// 1-based lines of `file` carrying a panic-capable site (`panic-path` or
/// `slice-index`), **before** suppression — the call-graph panic surface
/// counts these even when an `scp-allow` pragma justifies them, because a
/// justified `unwrap` can still panic; the pragma documents why it should
/// not, the surface report records that it could.
pub fn panic_site_lines(file: &SourceFile) -> Vec<usize> {
    let mut out = Vec::new();
    if !library_code(file.kind) {
        return out;
    }
    for (idx, line) in file.masked.code_lines().iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        let mut hit = false;
        let mut emit = |_rule: &'static str, _msg: String| hit = true;
        check_panic_path(line, &mut emit);
        check_slice_index(line, &mut emit);
        if hit {
            out.push(lineno);
        }
    }
    out
}

/// One nondeterminism source site (see [`crate::taint`]).
#[derive(Debug, Clone)]
pub struct TaintSite {
    /// 1-based line of the source.
    pub line: usize,
    /// What kind of nondeterminism it injects (for traces and messages).
    pub what: String,
}

/// Files whose sources never seed taint: the interleaving explorer
/// *models* atomics and schedules — its nondeterminism is the explored
/// schedule space, which it enumerates deterministically.
const TAINT_EXEMPT: &[&str] = &["crates/analyze/src/interleave.rs"];

/// 1-based nondeterminism source sites of `file`, **before** suppression
/// and **ignoring the wall-clock whitelist and hash-iteration crate
/// scoping**. The line rules answer "is this site justified where it
/// stands"; the taint pass answers "where do its values flow", and a
/// whitelisted clock read is still a real source whose flow must be cut
/// by a `// DETERMINISM:` pragma (or end at a non-`pub` sink) to stay
/// out of the determinism surface.
pub(crate) fn taint_site_lines(file: &SourceFile) -> Vec<TaintSite> {
    let mut out = Vec::new();
    if !library_code(file.kind) || TAINT_EXEMPT.contains(&file.rel_path.as_str()) {
        return out;
    }
    let code_lines = file.masked.code_lines();
    let hash_names = hash_bound_names(&code_lines);
    for (idx, line) in code_lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        let mut emit = |_rule: &'static str, msg: String| {
            out.push(TaintSite {
                line: lineno,
                what: msg,
            });
        };
        check_wall_clock(line, &mut emit);
        check_env_entropy(line, &mut emit);
        check_hash_iteration(line, &hash_names, &mut emit);
    }
    for line in crate::atomics::relaxed_load_lines(file) {
        out.push(TaintSite {
            line,
            what: "`Relaxed` atomic load: the value read depends on thread interleaving".to_owned(),
        });
    }
    out.sort_by_key(|s| s.line);
    out
}

/// Applies one file's `scp-allow` pragmas to `findings` (which may come
/// from any mix of passes), appending `invalid-pragma`/`unused-allow`
/// hygiene findings, and returns the merged, line-sorted set.
pub(crate) fn apply_pragmas(file: &SourceFile, mut findings: Vec<Finding>) -> Vec<Finding> {
    let suppressible = suppressible_rules();
    let (pragmas, errors) = parse_pragmas(file, &suppressible);
    let mut used = vec![false; pragmas.len()];
    for f in &mut findings {
        for (pi, p) in pragmas.iter().enumerate() {
            if p.rule == f.rule && p.target_line == f.line {
                f.suppressed = true;
                if let Some(u) = used.get_mut(pi) {
                    *u = true;
                }
            }
        }
    }
    for e in errors {
        findings.push(Finding {
            file: file.rel_path.clone(),
            line: e.line,
            rule: "invalid-pragma",
            message: e.message,
            snippet: snippet_at(file, e.line),
            suppressed: false,
        });
    }
    for (p, was_used) in pragmas.iter().zip(used) {
        if !was_used {
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: p.line,
                rule: "unused-allow",
                message: format!(
                    "scp-allow({}) suppresses nothing on line {}",
                    p.rule, p.target_line
                ),
                snippet: snippet_at(file, p.line),
                suppressed: false,
            });
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    findings
}

fn snippet_at(file: &SourceFile, line: usize) -> String {
    file.lines
        .get(line.saturating_sub(1))
        .map(|l| l.trim().to_owned())
        .unwrap_or_default()
}

// ---------------------------------------------------------------- helpers

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets where `tok` occurs with non-identifier characters on both
/// sides.
fn token_positions(line: &str, tok: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = tail(line, from).find(tok) {
        let start = from + off;
        let end = start + tok.len();
        let left_ok = start == 0 || !is_ident(at(bytes, start - 1));
        // `at` yields NUL past the end, which is not an identifier byte.
        let right_ok = !is_ident(at(bytes, end));
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// Whether the call opened by the `(` at `open` is followed by `?` —
/// i.e. the "expect" is a `Result`-returning helper, not a panic.
fn call_is_tried(line: &str, open: usize) -> bool {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match at(bytes, j) {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    let rest = tail(line, j + 1).trim_start();
                    return rest.starts_with('?');
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Call spans lines: be conservative and treat it as panicking.
    false
}

// ------------------------------------------------------------------ rules

fn check_panic_path(line: &str, emit: &mut impl FnMut(&'static str, String)) {
    for method in ["unwrap", "unwrap_err"] {
        for pos in token_positions(line, method) {
            let prefixed = pos > 0 && at(line.as_bytes(), pos - 1) == b'.';
            if prefixed && tail(line, pos + method.len()).starts_with("()") {
                emit("panic-path", format!(".{method}() can panic"));
            }
        }
    }
    for method in ["expect", "expect_err"] {
        for pos in token_positions(line, method) {
            let prefixed = pos > 0 && at(line.as_bytes(), pos - 1) == b'.';
            let open = pos + method.len();
            if prefixed && tail(line, open).starts_with('(') && !call_is_tried(line, open) {
                emit("panic-path", format!(".{method}(...) can panic"));
            }
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for pos in token_positions(line, mac) {
            if tail(line, pos + mac.len()).starts_with("!(") {
                emit("panic-path", format!("{mac}! aborts this path"));
            }
        }
    }
}

fn check_slice_index(line: &str, emit: &mut impl FnMut(&'static str, String)) {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = at(bytes, i - 1);
        if is_ident(prev) || prev == b')' || prev == b']' {
            emit(
                "slice-index",
                "indexing panics when out of bounds; prefer .get()".to_owned(),
            );
        }
    }
}

fn check_float_eq(line: &str, emit: &mut impl FnMut(&'static str, String)) {
    let bytes = line.as_bytes();
    for op in ["==", "!="] {
        let mut from = 0usize;
        while let Some(off) = tail(line, from).find(op) {
            let opos = from + off;
            from = opos + op.len();
            // Exclude `<=`/`>=`-style composites and pattern `=>`.
            if opos > 0 && matches!(at(bytes, opos - 1), b'<' | b'>' | b'=' | b'!') {
                continue;
            }
            if bytes.get(opos + op.len()) == Some(&b'=') {
                continue;
            }
            let right = tail(line, opos + op.len()).trim_start();
            let left = sub(line, 0, opos).trim_end();
            if is_float_literal_prefix(right) || is_float_literal_suffix(left) {
                emit(
                    "float-eq",
                    format!("`{op}` against a float literal; compare via an epsilon helper"),
                );
            }
        }
    }
}

/// Does `s` *start* with a float literal (`1.0`, `-.5`, `2e-3`, `1f64`)?
fn is_float_literal_prefix(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s).trim_start();
    let bytes = s.as_bytes();
    if bytes.first().is_none_or(|b| !b.is_ascii_digit()) {
        return false;
    }
    let mut i = 0usize;
    while bytes
        .get(i)
        .is_some_and(|&b| b.is_ascii_digit() || b == b'_')
    {
        i += 1;
    }
    match bytes.get(i) {
        Some(b'.') => bytes.get(i + 1).is_some_and(u8::is_ascii_digit),
        Some(b'e') | Some(b'E') => true,
        Some(b'f') => tail(s, i).starts_with("f32") || tail(s, i).starts_with("f64"),
        _ => false,
    }
}

/// Does `s` *end* with a float literal?
fn is_float_literal_suffix(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut i = bytes.len();
    while i > 0 && (is_ident(at(bytes, i - 1)) || at(bytes, i - 1) == b'.') {
        i -= 1;
    }
    is_float_literal_prefix(tail(s, i))
}

/// Names in this file bound to a `HashMap`/`HashSet` (let bindings with
/// or without type ascription, struct fields, fn parameters).
fn hash_bound_names(code_lines: &[&str]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in code_lines {
        for ty in ["HashMap", "HashSet"] {
            for pos in token_positions(line, ty) {
                if let Some(name) = binding_before(line, pos) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// Walks left from a type token (`HashMap`, `AtomicU64`, ...) through
/// `std::collections::`-style paths, `&`/`mut`, a `:` type ascription or
/// an `=` initializer, to the identifier being bound. Returns `None` for
/// appearances that bind nothing (e.g. a bare `use` item). Shared with
/// [`crate::atomics`], which peels generic wrappers first.
pub(crate) fn binding_before(line: &str, ty_pos: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = ty_pos;
    // Skip the path prefix (`std::collections::`) and reference sigils.
    loop {
        let before = sub(line, 0, i).trim_end();
        i = before.len();
        if before.ends_with("::") {
            let mut j = i - 2;
            while j > 0 && (is_ident(at(bytes, j - 1)) || at(bytes, j - 1) == b':') {
                j -= 1;
            }
            i = j;
        } else if before.ends_with('&') || before.ends_with("mut") {
            i = before.len() - if before.ends_with('&') { 1 } else { 3 };
        } else {
            break;
        }
    }
    let before = sub(line, 0, i).trim_end();
    let sep = before.as_bytes().last().copied()?;
    let ident_end = match sep {
        b':' => before.len() - 1,
        b'=' => {
            // `let name = HashMap::new()` — or `name: Ty = HashMap::new()`.
            let lhs = sub(before, 0, before.len() - 1).trim_end();
            let lhs = match lhs.rfind(':') {
                Some(c) if !sub(lhs, 0, c).ends_with(':') => sub(lhs, 0, c).trim_end(),
                _ => lhs,
            };
            return last_ident(lhs);
        }
        _ => return None,
    };
    last_ident(sub(before, 0, ident_end))
}

fn last_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let bytes = s.as_bytes();
    let mut i = s.len();
    while i > 0 && is_ident(at(bytes, i - 1)) {
        i -= 1;
    }
    if i == s.len() {
        return None;
    }
    let name = tail(s, i);
    if name.as_bytes().first().is_some_and(u8::is_ascii_digit) {
        return None;
    }
    Some(name.to_owned())
}

/// Methods whose call on a hash collection observes iteration order (or
/// iterates, even if only for a count — flagged so the justification is
/// written down).
const ITERATING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

fn check_hash_iteration(
    line: &str,
    hash_names: &[String],
    emit: &mut impl FnMut(&'static str, String),
) {
    let bytes = line.as_bytes();
    for name in hash_names {
        for pos in token_positions(line, name) {
            let after = tail(line, pos + name.len());
            if let Some(rest) = after.strip_prefix('.') {
                for m in ITERATING_METHODS {
                    if rest.starts_with(m) && tail(rest, m.len()).starts_with('(') {
                        emit(
                            "hash-iteration",
                            format!("`{name}.{m}()` iterates a hash collection in nondeterministic order"),
                        );
                    }
                }
            }
            // `for x in name` / `for x in &name` / `for x in &mut name`.
            let before = sub(line, 0, pos).trim_end();
            let before = before
                .strip_suffix("&mut")
                .unwrap_or(before.strip_suffix('&').unwrap_or(before))
                .trim_end();
            if before.ends_with(" in") || before.ends_with("\tin") {
                let has_for = token_positions(line, "for").iter().any(|&f| f < pos);
                // A trailing `.` means a method-call rule owns the site
                // (`for k in m.keys()` is reported as `m.keys()`).
                let follows = bytes.get(pos + name.len()).copied();
                let follows_ident = follows.is_some_and(|b| is_ident(b) || b == b'.');
                if has_for && !follows_ident {
                    emit(
                        "hash-iteration",
                        format!("`for ... in {name}` iterates a hash collection in nondeterministic order"),
                    );
                }
            }
        }
    }
}

fn check_wall_clock(line: &str, emit: &mut impl FnMut(&'static str, String)) {
    for tok in ["Instant", "SystemTime"] {
        for pos in token_positions(line, tok) {
            let after = tail(line, pos + tok.len());
            // Imports and type positions are fine; *reads* are not.
            if after.starts_with("::now") {
                emit(
                    "wall-clock",
                    format!("`{tok}` wall-clock read outside the timing whitelist"),
                );
            }
        }
    }
    for pos in token_positions(line, "elapsed") {
        let prefixed = pos > 0 && at(line.as_bytes(), pos - 1) == b'.';
        if prefixed && tail(line, pos + "elapsed".len()).starts_with('(') {
            emit(
                "wall-clock",
                "`.elapsed()` reads a wall clock outside the timing whitelist".to_owned(),
            );
        }
    }
}

fn check_env_entropy(line: &str, emit: &mut impl FnMut(&'static str, String)) {
    for tok in [
        "RandomState",
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
    ] {
        if !token_positions(line, tok).is_empty() {
            emit(
                "env-entropy",
                format!("`{tok}` injects ambient entropy into a deterministic system"),
            );
        }
    }
    for tok in ["var", "var_os", "vars", "vars_os"] {
        for pos in token_positions(line, tok) {
            let prefixed = sub(line, 0, pos).ends_with("env::");
            if prefixed && tail(line, pos + tok.len()).starts_with('(') {
                emit(
                    "env-entropy",
                    format!("`env::{tok}` makes behavior depend on the environment"),
                );
            }
        }
    }
}

/// Memory-ordering variant names (`std::sync::atomic::Ordering`). The
/// `cmp::Ordering` variants (`Less`/`Equal`/`Greater`) never collide.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn check_ordering_comment(
    line: &str,
    idx: usize,
    code_lines: &[&str],
    comment_lines: &[&str],
    emit: &mut impl FnMut(&'static str, String),
) {
    for variant in ATOMIC_ORDERINGS {
        for pos in token_positions(line, variant) {
            if !line.get(..pos).unwrap_or("").ends_with("Ordering::") {
                continue;
            }
            if !ordering_documented(idx, code_lines, comment_lines) {
                emit(
                    "ordering-comment",
                    format!(
                        "`Ordering::{variant}` without an `/ ORDERING:` comment \
                         justifying the choice"
                    ),
                );
            }
        }
    }
}

/// Whether line `idx` (0-based) carries an `ORDERING:` comment, either on
/// the line itself or in the contiguous comment-only block directly above
/// it (multi-line justifications are the norm).
fn ordering_documented(idx: usize, code_lines: &[&str], comment_lines: &[&str]) -> bool {
    let has = |i: usize| {
        comment_lines
            .get(i)
            .is_some_and(|c| c.contains("ORDERING:"))
    };
    if has(idx) {
        return true;
    }
    let mut j = idx;
    while j > 0 && idx - j < 16 {
        j -= 1;
        // Stop at the first line that has real code on it; blank and
        // comment-only lines extend the window upward.
        if code_lines.get(j).is_some_and(|c| !c.trim().is_empty()) {
            return false;
        }
        if has(j) {
            return true;
        }
    }
    false
}

fn check_concurrency(
    line: &str,
    locks_allowed: bool,
    spawns_allowed: bool,
    emit: &mut impl FnMut(&'static str, String),
) {
    if !locks_allowed {
        for ty in ["Mutex", "RwLock", "Condvar"] {
            if !token_positions(line, ty).is_empty() {
                emit(
                    "concurrency-primitive",
                    format!("`{ty}` outside the lock whitelist"),
                );
            }
        }
    }
    if !spawns_allowed {
        for method in ["spawn", "scope"] {
            for pos in token_positions(line, method) {
                let before = line.get(..pos).unwrap_or("");
                let after = line.get(pos + method.len()..).unwrap_or("");
                if after.starts_with('(') && (before.ends_with("thread::") || before.ends_with('.'))
                {
                    emit(
                        "concurrency-primitive",
                        format!("`{method}` spawns threads outside the spawn whitelist"),
                    );
                }
            }
        }
    }
    for pos in token_positions(line, "static") {
        let rest = line.get(pos + "static".len()..).unwrap_or("").trim_start();
        if rest.starts_with("mut ") {
            emit(
                "concurrency-primitive",
                "`static mut` is an unsynchronized global".to_owned(),
            );
        }
    }
}

/// Integer types an `as` cast may silently truncate into. `usize`/`u64`
/// and the float types are widening (or at least platform-word) targets
/// on every tier this workspace supports, and stay allowed.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn check_narrow_cast(line: &str, emit: &mut impl FnMut(&'static str, String)) {
    for pos in token_positions(line, "as") {
        let rest = line.get(pos + 2..).unwrap_or("").trim_start();
        for target in NARROW_TARGETS {
            let Some(after) = rest.strip_prefix(target) else {
                continue;
            };
            if !after.as_bytes().first().is_some_and(|&b| is_ident(b)) {
                emit(
                    "narrow-cast",
                    format!("`as {target}` can truncate silently; prefer `{target}::try_from`"),
                );
            }
        }
    }
}

fn check_unsafe(
    line: &str,
    idx: usize,
    comment_lines: &[&str],
    emit: &mut impl FnMut(&'static str, String),
) {
    if token_positions(line, "unsafe").is_empty() {
        return;
    }
    let lo = idx.saturating_sub(2);
    let documented = comment_lines
        .get(lo..=idx.min(comment_lines.len().saturating_sub(1)))
        .unwrap_or(&[])
        .iter()
        .any(|c| c.contains("SAFETY:"));
    if !documented {
        emit(
            "unsafe-hygiene",
            "`unsafe` without a `// SAFETY:` comment on or just above the line".to_owned(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::{FileKind, SourceFile};
    use crate::lexer::mask;

    fn lib_file(src: &str) -> SourceFile {
        let masked = mask(src);
        let in_test = crate::files::cfg_test_lines(&masked);
        SourceFile {
            rel_path: "crates/sim/src/x.rs".into(),
            crate_name: "scp-sim".into(),
            kind: FileKind::Library,
            in_test,
            masked,
            lines: src.lines().map(str::to_owned).collect(),
        }
    }

    fn rules_fired(src: &str) -> Vec<&'static str> {
        check_file(&lib_file(src))
            .into_iter()
            .filter(|f| !f.suppressed)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn unwrap_and_expect_fire() {
        assert_eq!(rules_fired("let a = x.unwrap();"), vec!["panic-path"]);
        assert_eq!(
            rules_fired("let a = x.expect(\"must\");"),
            vec!["panic-path"]
        );
        assert_eq!(rules_fired("panic!(\"boom\");"), vec!["panic-path"]);
        assert_eq!(rules_fired("unreachable!();"), vec!["panic-path"]);
    }

    #[test]
    fn result_returning_expect_helper_is_not_a_panic() {
        // scp-json's parser has a private `expect(&mut self, b: u8) ->
        // Result<..>`; the `?` marks it as tried, not panicking.
        assert!(rules_fired("self.expect(b\".\")?;").is_empty());
        assert!(rules_fired("p.expect(b\".\")?.more();").is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        assert!(rules_fired("let a = x.unwrap_or(0);").is_empty());
        assert!(rules_fired("let a = x.unwrap_or_else(|| 0);").is_empty());
        assert!(rules_fired("let a = x.unwrap_or_default();").is_empty());
    }

    #[test]
    fn slice_index_fires_and_type_brackets_do_not() {
        assert_eq!(rules_fired("let a = xs[0];"), vec!["slice-index"]);
        assert_eq!(rules_fired("let a = f()[i];"), vec!["slice-index"]);
        assert!(rules_fired("let a: [f64; 4] = make();").is_empty());
        assert!(rules_fired("let v = vec![0.0; n];").is_empty());
        assert!(rules_fired("#[derive(Debug)]").is_empty());
        assert!(rules_fired("let [a, b] = pair;").is_empty());
    }

    #[test]
    fn float_eq_fires_both_sides_and_spares_integers() {
        assert_eq!(rules_fired("if x == 0.0 {"), vec!["float-eq"]);
        assert_eq!(rules_fired("if 1.5 != y {"), vec!["float-eq"]);
        assert_eq!(rules_fired("if x == 1e-12 {"), vec!["float-eq"]);
        assert_eq!(rules_fired("if x == 2f64 {"), vec!["float-eq"]);
        assert!(rules_fired("if x == 0 {").is_empty());
        assert!(rules_fired("if x <= 0.0 {").is_empty());
        assert!(rules_fired("if x >= 0.0 {").is_empty());
        assert!(rules_fired("match x { 0.0 => 1, _ => 2 }").is_empty());
    }

    #[test]
    fn hash_iteration_tracks_bindings() {
        let src = "let mut m: HashMap<u64, u64> = HashMap::new();\nfor k in m.keys() {\n}\n";
        assert!(rules_fired(src).contains(&"hash-iteration"));
        let direct =
            "let m = std::collections::HashMap::new();\nlet v: Vec<_> = m.into_iter().collect();\n";
        assert!(rules_fired(direct).contains(&"hash-iteration"));
        let for_loop = "let s: HashSet<u32> = HashSet::new();\nfor x in &s {\n}\n";
        assert!(rules_fired(for_loop).contains(&"hash-iteration"));
        // Membership tests never fire.
        let member = "let s: HashSet<u32> = HashSet::new();\nif s.contains(&1) { s.len(); }\n";
        assert!(rules_fired(member).is_empty());
    }

    #[test]
    fn hash_iteration_scope_is_limited_to_result_crates() {
        let masked = mask("let m: HashMap<u64,u64> = HashMap::new();\nfor k in m.keys() {}\n");
        let n = masked.code.lines().count();
        let file = SourceFile {
            rel_path: "crates/workload/src/x.rs".into(),
            crate_name: "scp-workload".into(),
            kind: FileKind::Library,
            masked,
            in_test: vec![false; n],
            lines: vec![],
        };
        assert!(check_file(&file).is_empty());
    }

    #[test]
    fn wall_clock_fires_outside_whitelist() {
        assert_eq!(rules_fired("let t = Instant::now();"), vec!["wall-clock"]);
        assert_eq!(
            rules_fired("let t = SystemTime::now();"),
            vec!["wall-clock"]
        );
        assert_eq!(rules_fired("let d = start.elapsed();"), vec!["wall-clock"]);
        assert!(rules_fired("use std::time::Instant;").is_empty());
    }

    #[test]
    fn wall_clock_whitelist_applies() {
        let masked = mask("let t = Instant::now();\n");
        let file = SourceFile {
            rel_path: "crates/sim/src/runner.rs".into(),
            crate_name: "scp-sim".into(),
            kind: FileKind::Library,
            in_test: vec![false; 1],
            masked,
            lines: vec!["let t = Instant::now();".into()],
        };
        assert!(check_file(&file).is_empty());
        let masked = mask("let t = Instant::now();\n");
        let bench = SourceFile {
            rel_path: "crates/bench/src/harness.rs".into(),
            crate_name: "scp-bench".into(),
            kind: FileKind::Library,
            in_test: vec![false; 1],
            masked,
            lines: vec!["let t = Instant::now();".into()],
        };
        assert!(check_file(&bench).is_empty());
        let masked = mask("let t = Instant::now();\n");
        let clock = SourceFile {
            rel_path: "crates/serve/src/clock.rs".into(),
            crate_name: "scp-serve".into(),
            kind: FileKind::Library,
            in_test: vec![false; 1],
            masked,
            lines: vec!["let t = Instant::now();".into()],
        };
        assert!(check_file(&clock).is_empty());
        // Only the clock module is exempt — the rest of the serving
        // engine must route wall-clock reads through it.
        let masked = mask("let t = Instant::now();\n");
        let engine = SourceFile {
            rel_path: "crates/serve/src/engine.rs".into(),
            crate_name: "scp-serve".into(),
            kind: FileKind::Library,
            in_test: vec![false; 1],
            masked,
            lines: vec!["let t = Instant::now();".into()],
        };
        assert_eq!(check_file(&engine).len(), 1);
    }

    #[test]
    fn env_entropy_fires() {
        assert_eq!(
            rules_fired("let h: HashMap<K, V, RandomState> = x;"),
            vec!["env-entropy"]
        );
        assert_eq!(
            rules_fired("let v = std::env::var(\"SEED\");"),
            vec!["env-entropy"]
        );
        assert!(rules_fired("let a = std::env::args();").is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        assert_eq!(
            rules_fired("let p = unsafe { *ptr };"),
            vec!["unsafe-hygiene"]
        );
        let documented = "// SAFETY: ptr is valid for the whole call\nlet p = unsafe { *ptr };\n";
        assert!(rules_fired(documented).is_empty());
    }

    #[test]
    fn pragmas_suppress_and_unused_pragmas_fire() {
        let ok = "let a = x.unwrap(); // scp-allow(panic-path): checked above\n";
        let f = check_file(&lib_file(ok));
        assert!(f.iter().all(|f| f.suppressed));
        let above = "// scp-allow(slice-index): len checked by caller\nlet a = xs[0];\n";
        let f = check_file(&lib_file(above));
        assert!(f.iter().all(|f| f.suppressed));
        let unused = "// scp-allow(panic-path): nothing here\nlet a = 1;\n";
        assert_eq!(rules_fired(unused), vec!["unused-allow"]);
        let bad = "// scp-allow(not-a-rule): x\nlet a = 1;\n";
        assert_eq!(rules_fired(bad), vec!["invalid-pragma"]);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        assert!(rules_fired("// call .unwrap() here\n").is_empty());
        assert!(rules_fired("let s = \".unwrap()\";").is_empty());
        assert!(rules_fired("let s = r#\"panic!(\"x\")\"#;").is_empty());
    }
}
