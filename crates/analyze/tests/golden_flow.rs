//! Golden tests for the two call-graph flow passes: atomic
//! happens-before pairing (`atomic-unpaired`) and transitive
//! nondeterminism taint (`nondet-taint` + `DETERMINISM:` hygiene).
//! Same spirit as `golden_rules.rs`: each test pins one semantic the
//! workspace relies on, so a scanner or propagation change that widens
//! or narrows a pass fails here first.

use scp_analyze::analyze_sources;
use scp_analyze::atomics;
use scp_analyze::baseline::Baseline;
use scp_analyze::files::SourceFile;
use scp_analyze::rules::Finding;
use scp_analyze::surface::Surface;
use scp_analyze::Analysis;

/// Runs only the atomics pairing pass over `src` as serve library code.
fn atomic_findings(src: &str) -> Vec<Finding> {
    atomics::check_file(&SourceFile::from_source("crates/serve/src/golden.rs", src))
}

/// Runs the whole merged pipeline (line rules + atomics + taint +
/// pragma application) over an explicit file set, against empty
/// committed artifacts — so every tainted pub fn is an "entered the
/// surface" finding.
fn pipeline(files: &[(&str, &str)]) -> Analysis {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(p, t)| SourceFile::from_source(p, t))
        .collect();
    analyze_sources(
        &sources,
        &Baseline::default(),
        &Surface::default(),
        &Surface::default(),
    )
}

fn rules_of(findings: &[Finding], rule: &str) -> Vec<Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .cloned()
        .collect()
}

// --- atomic-unpaired ----------------------------------------------------

#[test]
fn golden_atomic_paired_release_acquire_clean() {
    let src = "\
pub struct Ring { tail: AtomicU64 }
impl Ring {
    pub fn push(&self) { self.tail.store(1, Ordering::Release); }
    pub fn read(&self) -> u64 { self.tail.load(Ordering::Acquire) }
}
";
    assert!(atomic_findings(src).is_empty());
}

#[test]
fn golden_atomic_release_store_without_acquire_reader() {
    let src = "\
pub struct Ring { tail: AtomicU64 }
impl Ring {
    pub fn push(&self) { self.tail.store(1, Ordering::Release); }
    pub fn read(&self) -> u64 { self.tail.load(Ordering::Relaxed) }
}
";
    let f = atomic_findings(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 3);
    assert!(
        f[0].message.contains("publishes to nobody"),
        "{}",
        f[0].message
    );
}

#[test]
fn golden_atomic_acquire_load_on_relaxed_only_field() {
    let src = "\
pub struct Ring { head: AtomicU64 }
impl Ring {
    pub fn bump(&self) { self.head.store(1, Ordering::Relaxed); }
    pub fn read(&self) -> u64 { self.head.load(Ordering::Acquire) }
}
";
    let f = atomic_findings(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 4);
    assert!(
        f[0].message.contains("synchronizes with nothing"),
        "{}",
        f[0].message
    );
}

#[test]
fn golden_atomic_mixed_seqcst_and_relaxed() {
    let src = "\
pub struct Flag { state: AtomicU64 }
impl Flag {
    pub fn set(&self) { self.state.store(1, Ordering::SeqCst); }
    pub fn peek(&self) -> u64 { self.state.load(Ordering::Relaxed) }
}
";
    let f = atomic_findings(src);
    assert!(
        f.iter().any(|f| f.message.contains("mixes SeqCst")),
        "{f:?}"
    );
}

#[test]
fn golden_atomic_acqrel_rmw_is_self_pairing() {
    // A fetch_add(AcqRel) is both the release write and the acquire read
    // of its field; alone it is a complete pair.
    let src = "\
pub fn count(total: &AtomicU64) -> u64 {
    total.fetch_add(1, Ordering::AcqRel)
}
";
    assert!(atomic_findings(src).is_empty());
}

#[test]
fn golden_atomic_shared_field_across_handle_types_pairs() {
    // The batch ring splits one atomic between a producer and a consumer
    // handle; pairing pools per (file, field name), so the Release side
    // in one impl pairs with the Acquire side in the other.
    let src = "\
pub struct Producer { closed: Arc<AtomicBool> }
pub struct Consumer { closed: Arc<AtomicBool> }
impl Producer {
    pub fn close(&self) { self.closed.store(true, Ordering::Release); }
}
impl Consumer {
    pub fn is_closed(&self) -> bool { self.closed.load(Ordering::Acquire) }
}
";
    assert!(atomic_findings(src).is_empty());
}

#[test]
fn golden_atomic_never_fires_in_cfg_test() {
    let src = "\
pub fn live() {}
#[cfg(test)]
mod tests {
    fn t(a: &AtomicU64) { a.store(1, Ordering::Release); }
}
";
    assert!(atomic_findings(src).is_empty());
}

#[test]
fn golden_atomic_exempt_interleave_file() {
    let src = "\
pub fn model(a: &AtomicU64) { a.store(1, Ordering::Release); }
";
    let f = atomics::check_file(&SourceFile::from_source(
        "crates/analyze/src/interleave.rs",
        src,
    ));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn golden_atomic_unresolved_receiver_never_accused() {
    // A closure parameter cannot be attributed to a field; skipping is
    // the sound polarity — no finding even though the store is unpaired.
    let src = "\
pub fn f(xs: &[AtomicU64]) {
    xs.iter().for_each(|c| {
        c.store(1, Ordering::Release);
    });
}
";
    assert!(atomic_findings(src).is_empty());
}

// --- nondet-taint -------------------------------------------------------

#[test]
fn golden_taint_two_hop_pub_fn_enters_surface() {
    let a = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "pub fn top() -> f64 { mid() }\n\
         fn mid() -> f64 { read_clock() }\n\
         fn read_clock() -> f64 { let _t = std::time::Instant::now(); 0.0 }\n\
         pub fn clean() -> u64 { 1 }\n",
    )]);
    let taints = rules_of(&a.report.findings, "nondet-taint");
    assert_eq!(taints.len(), 1, "{taints:?}");
    assert_eq!(taints[0].line, 1, "anchored at the pub decl");
    assert!(
        taints[0].message.contains("top -> mid -> read_clock"),
        "{}",
        taints[0].message
    );
    assert_eq!(a.det_surface.added.len(), 1);
    assert!(a.det_surface.added[0].ends_with("::top"));
}

#[test]
fn golden_taint_whitelisted_wall_clock_still_seeds() {
    // runner.rs is on the wall-clock whitelist, so the line rule stays
    // quiet — but the taint pass still follows the value.
    let a = pipeline(&[(
        "crates/sim/src/runner.rs",
        "pub fn timed() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n",
    )]);
    assert!(rules_of(&a.report.findings, "wall-clock").is_empty());
    assert_eq!(rules_of(&a.report.findings, "nondet-taint").len(), 1);
}

#[test]
fn golden_taint_determinism_pragma_cuts_flow() {
    let a = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "pub fn top() -> f64 { mid() }\n\
         fn mid() -> f64 {\n\
             // DETERMINISM: wall time is progress metadata, never a result\n\
             read_clock()\n\
         }\n\
         fn read_clock() -> f64 { let _t = std::time::Instant::now(); 0.0 }\n",
    )]);
    assert!(rules_of(&a.report.findings, "nondet-taint").is_empty());
    assert!(rules_of(&a.report.findings, "unused-allow").is_empty());
    assert!(a.det_surface.added.is_empty());
}

#[test]
fn golden_taint_pragma_without_reason_is_invalid() {
    let a = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "pub fn f() -> f64 {\n\
             // DETERMINISM:\n\
             std::time::Instant::now().elapsed().as_secs_f64()\n\
         }\n",
    )]);
    let invalid = rules_of(&a.report.findings, "invalid-pragma");
    assert_eq!(invalid.len(), 1, "{invalid:?}");
    assert!(invalid[0].message.contains("non-empty reason"));
}

#[test]
fn golden_taint_pragma_outside_any_fn_is_invalid() {
    let a = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "// DETERMINISM: nothing contains this comment\n\
         pub fn clean() -> u64 { 1 }\n",
    )]);
    let invalid = rules_of(&a.report.findings, "invalid-pragma");
    assert_eq!(invalid.len(), 1, "{invalid:?}");
    assert!(invalid[0].message.contains("outside any function"));
}

#[test]
fn golden_taint_pragma_laundering_nothing_is_unused() {
    let a = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "pub fn clean() -> u64 {\n\
             // DETERMINISM: nothing nondeterministic happens here\n\
             1\n\
         }\n",
    )]);
    let unused = rules_of(&a.report.findings, "unused-allow");
    assert_eq!(unused.len(), 1, "{unused:?}");
    assert!(unused[0].message.contains("launders nothing"));
}

#[test]
fn golden_taint_relaxed_load_seeds_but_rmw_does_not() {
    // A fully-Relaxed load reads a racing value; a Relaxed fetch_add
    // returns a value, but the modification order still totally orders
    // the additions, so only the load seeds taint.
    let a = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "pub fn peek(a: &AtomicU64) -> u64 {\n\
             // ORDERING: monitoring-only counter read\n\
             a.load(Ordering::Relaxed)\n\
         }\n",
    )]);
    assert_eq!(rules_of(&a.report.findings, "nondet-taint").len(), 1);
    let b = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "pub fn bump(a: &AtomicU64) {\n\
             // ORDERING: counter, aggregated after join\n\
             a.fetch_add(1, Ordering::Relaxed);\n\
         }\n",
    )]);
    assert!(rules_of(&b.report.findings, "nondet-taint").is_empty());
}

#[test]
fn golden_taint_hash_iteration_seeds_outside_scoped_crates() {
    // scp-json is outside HASH_ITER_CRATES, so the line rule is silent —
    // but iteration order still taints the pub caller.
    let a = pipeline(&[(
        "crates/json/src/golden.rs",
        "use std::collections::HashMap;\n\
         pub fn dump(m: &HashMap<u64, u64>) -> Vec<u64> {\n\
             m.keys().copied().collect()\n\
         }\n",
    )]);
    assert!(rules_of(&a.report.findings, "hash-iteration").is_empty());
    assert_eq!(rules_of(&a.report.findings, "nondet-taint").len(), 1);
}

#[test]
fn golden_taint_private_sink_stays_off_the_surface() {
    // Taint that never reaches a pub fn is debt nobody exports; the
    // surface (and the deny gate) only count pub entry points.
    let a = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "fn read_clock() -> f64 { let _t = std::time::Instant::now(); 0.0 }\n\
         pub fn clean() -> u64 { 1 }\n",
    )]);
    assert!(rules_of(&a.report.findings, "nondet-taint").is_empty());
    assert!(a.det_surface.added.is_empty());
}

#[test]
fn golden_taint_committed_surface_entry_is_not_a_finding() {
    // A pub fn already in the committed surface is known debt, not a
    // regression: no nondet-taint finding, and the report stays in sync.
    let sources = vec![SourceFile::from_source(
        "crates/cluster/src/golden.rs",
        "pub fn top() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n",
    )];
    let observed = analyze_sources(
        &sources,
        &Baseline::default(),
        &Surface::default(),
        &Surface::default(),
    );
    let committed = observed.det_surface.observed.clone();
    let a = analyze_sources(
        &sources,
        &Baseline::default(),
        &Surface::default(),
        &committed,
    );
    assert!(rules_of(&a.report.findings, "nondet-taint").is_empty());
    assert!(a.det_surface.added.is_empty());
    assert!(a.det_surface.in_sync());
}

// --- suppression forms for the flow rules -------------------------------

#[test]
fn golden_allow_atomic_unpaired_same_line() {
    let src = "\
pub struct Ring { tail: AtomicU64 }
impl Ring {
    pub fn push(&self) {
        // ORDERING: paired with the consumer crate's acquire
        // scp-allow(atomic-unpaired): reader lives in the sibling module
        self.tail.store(1, Ordering::Release);
    }
}
";
    let a = pipeline(&[("crates/serve/src/golden.rs", src)]);
    let unpaired = rules_of(&a.report.findings, "atomic-unpaired");
    assert_eq!(unpaired.len(), 1, "{unpaired:?}");
    assert!(unpaired[0].suppressed, "pragma must reach the atomics pass");
    assert!(rules_of(&a.report.findings, "unused-allow").is_empty());
}

#[test]
fn golden_allow_nondet_taint_on_decl_line() {
    let a = pipeline(&[(
        "crates/cluster/src/golden.rs",
        "// scp-allow(nondet-taint): clock value feeds a log line only\n\
         pub fn top() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n",
    )]);
    let taints = rules_of(&a.report.findings, "nondet-taint");
    assert_eq!(taints.len(), 1, "{taints:?}");
    assert!(taints[0].suppressed, "{taints:?}");
}

#[test]
fn golden_allow_flow_rule_names_are_known_to_the_meta_rules() {
    // A flow-rule pragma that suppresses nothing is `unused-allow`, not
    // `invalid-pragma` — both new names are registered.
    for rule in ["nondet-taint", "atomic-unpaired"] {
        let a = pipeline(&[(
            "crates/cluster/src/golden.rs",
            &format!("// scp-allow({rule}): nothing here\npub fn f() -> u64 {{ 1 }}\n"),
        )]);
        let rules: Vec<&str> = a
            .report
            .findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(|f| f.rule)
            .collect();
        assert_eq!(rules, vec!["unused-allow"], "{rule}");
    }
}
