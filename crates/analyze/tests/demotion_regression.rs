//! Regression gate: a seeded `Release` → `Relaxed` demotion in the real
//! SPSC ring source is caught *statically* by the pairing pass.
//!
//! The interleaving explorer already proves this bug dynamically by
//! enumerating schedules; this test proves the static complement: take
//! `crates/serve/src/spsc.rs` verbatim, demote the producer's
//! publication store, and require `atomic-unpaired` to fire on the
//! demoted line. CI runs this file as its own named step, so the
//! pipeline output shows the demotion being caught by name.

use scp_analyze::atomics::check_file;
use scp_analyze::files::{find_workspace_root, SourceFile};
use std::path::Path;

fn spsc_source() -> String {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("analyze crate lives inside the workspace");
    std::fs::read_to_string(root.join("crates/serve/src/spsc.rs")).expect("spsc.rs exists")
}

#[test]
fn pristine_spsc_ring_is_pairing_clean() {
    // Control: the committed ring has zero unsuppressed pairing findings
    // (otherwise the demotion test below could pass vacuously).
    let file = SourceFile::from_source("crates/serve/src/spsc.rs", &spsc_source());
    let findings = check_file(&file);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn seeded_release_to_relaxed_demotion_is_caught() {
    let src = spsc_source();
    let seeded = "self.tail.store(tail + 1, Ordering::Release)";
    let demoted = "self.tail.store(tail + 1, Ordering::Relaxed)";
    assert!(
        src.contains(seeded),
        "the producer's publication store moved; update this fixture"
    );
    let broken = src.replacen(seeded, demoted, 1);
    let file = SourceFile::from_source("crates/serve/src/spsc.rs", &broken);
    let findings = check_file(&file);
    // The consumer still acquire-loads `tail`, so the broken side is the
    // acquire that now synchronizes with nothing.
    assert!(
        !findings.is_empty(),
        "the demoted publication store went unnoticed"
    );
    assert!(
        findings.iter().all(|f| f.rule == "atomic-unpaired"),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("tail") && f.message.contains("synchronizes with nothing")),
        "expected the orphaned acquire read of `tail` to be named:\n{findings:?}"
    );
}

#[test]
fn seeded_acquire_demotion_on_the_consumer_side_is_caught() {
    // Symmetric seed: demote the consumer's head publication instead.
    let src = spsc_source();
    let seeded = "self.head.store(head + 1, Ordering::Release)";
    let demoted = "self.head.store(head + 1, Ordering::Relaxed)";
    assert!(
        src.contains(seeded),
        "the consumer's free-slot store moved; update this fixture"
    );
    // Both head stores (scalar and batched) must be demoted, or the
    // remaining Release keeps the pool paired — which is itself the
    // pooling semantics working as designed.
    let broken = src.replace(seeded, demoted).replace(
        "self.head.store(head + taken, Ordering::Release)",
        "self.head.store(head + taken, Ordering::Relaxed)",
    );
    let file = SourceFile::from_source("crates/serve/src/spsc.rs", &broken);
    let findings = check_file(&file);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("head") && f.message.contains("synchronizes with nothing")),
        "expected the producer's orphaned acquire read of `head`:\n{findings:?}"
    );
}
