//! Seeded randomized properties of the atomic-access indexer.
//!
//! The pairing pass ([`scp_analyze::atomics`]) is only as sound as its
//! extraction: accesses must be attributed to the right field, at the
//! right line, from the code mask only, and never from test code. These
//! tests generate random struct/impl files — atomic fields, random
//! ops/orderings, decoy accesses buried in comments and strings, and
//! `#[cfg(test)]` regions — with the workspace's own deterministic
//! Xoshiro256** (any failure reproduces exactly from the printed case
//! number).

use scp_analyze::atomics::{check_file, index_file, OpKind};
use scp_analyze::files::SourceFile;
use scp_workload::rng::{next_below, Rng, Xoshiro256StarStar};

const FIELDS: &[&str] = &["head", "tail", "seq", "closed", "quota", "epoch"];
const OPS: &[(&str, OpKind)] = &[
    ("load", OpKind::Load),
    ("store", OpKind::Store),
    ("swap", OpKind::Rmw),
    ("fetch_add", OpKind::Rmw),
    ("compare_exchange", OpKind::Rmw),
];
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One expected access the generator planted in real code.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Planted {
    field: &'static str,
    op: OpKind,
    orderings: Vec<&'static str>,
}

/// Renders one real access statement for `field`, returning the planted
/// expectation alongside.
fn access_stmt(rng: &mut dyn Rng, field: &'static str) -> (String, Planted) {
    let (name, op) = OPS[next_below(rng, OPS.len() as u64) as usize];
    let first = ORDERINGS[next_below(rng, ORDERINGS.len() as u64) as usize];
    match (name, op) {
        ("load", _) => (
            format!("        let _ = self.{field}.load(Ordering::{first});\n"),
            Planted {
                field,
                op,
                orderings: vec![first],
            },
        ),
        ("store", _) => (
            format!("        self.{field}.store(1, Ordering::{first});\n"),
            Planted {
                field,
                op,
                orderings: vec![first],
            },
        ),
        ("compare_exchange", _) => {
            let second = ORDERINGS[next_below(rng, ORDERINGS.len() as u64) as usize];
            (
                format!(
                    "        let _ = self.{field}.compare_exchange(\n\
                     \x20           0,\n\
                     \x20           1,\n\
                     \x20           Ordering::{first},\n\
                     \x20           Ordering::{second},\n\
                     \x20       );\n"
                ),
                Planted {
                    field,
                    op,
                    orderings: vec![first, second],
                },
            )
        }
        (name, op) => (
            format!("        let _ = self.{field}.{name}(1, Ordering::{first});\n"),
            Planted {
                field,
                op,
                orderings: vec![first],
            },
        ),
    }
}

/// A decoy that must never be indexed: the same access text buried in a
/// comment, a string, or a doc comment.
fn decoy_stmt(rng: &mut dyn Rng, field: &str) -> String {
    let core = format!("self.{field}.store(1, Ordering::Release)");
    match next_below(rng, 4) {
        0 => format!("        // decoy: {core}\n"),
        1 => format!("        /* {core} */\n"),
        2 => format!("        let _s = \"{core}\";\n"),
        _ => format!("    /// doc decoy: {core}\n"),
    }
}

/// Builds one random file plus the list of accesses actually planted in
/// live code, in source order.
fn random_file(rng: &mut dyn Rng) -> (String, Vec<Planted>) {
    let n_fields = 1 + next_below(rng, FIELDS.len() as u64 - 1) as usize;
    let mut src = String::from("use std::sync::atomic::{AtomicU64, Ordering};\n");
    src.push_str("pub struct Gen {\n");
    for field in &FIELDS[..n_fields] {
        src.push_str(&format!("    {field}: AtomicU64,\n"));
    }
    src.push_str("}\nimpl Gen {\n");
    let mut planted = Vec::new();
    let stmts = 1 + next_below(rng, 8) as usize;
    for s in 0..stmts {
        src.push_str(&format!("    pub fn m{s}(&self) {{\n"));
        let field = FIELDS[next_below(rng, n_fields as u64) as usize];
        if next_below(rng, 3) == 0 {
            src.push_str(&decoy_stmt(rng, field));
        } else {
            let (stmt, p) = access_stmt(rng, field);
            src.push_str(&stmt);
            planted.push(p);
        }
        src.push_str("    }\n");
    }
    src.push_str("}\n");
    if next_below(rng, 2) == 0 {
        // A test module full of accesses the pass must ignore.
        src.push_str(
            "#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() {\n\
             \x20       let g = Gen { head: AtomicU64::new(0) };\n\
             \x20       g.head.store(1, Ordering::Release);\n\
             \x20       let _ = g.head.load(Ordering::Relaxed);\n\
             \x20   }\n}\n",
        );
    }
    (src, planted)
}

fn file_of(src: &str) -> SourceFile {
    SourceFile::from_source("crates/serve/src/generated.rs", src)
}

#[test]
fn prop_indexer_sees_exactly_the_planted_accesses() {
    // Mask alignment: decoys in comments/strings are invisible, planted
    // accesses are all found with the right field, op and orderings.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA70_0001);
    for case in 0..500 {
        let (src, planted) = random_file(&mut rng);
        let ix = index_file(&file_of(&src));
        let live: Vec<_> = ix.accesses.iter().filter(|a| !a.in_test).collect();
        assert_eq!(
            live.len(),
            planted.len(),
            "case {case}: indexed {live:?}\nfrom\n{src}"
        );
        for (a, p) in live.iter().zip(&planted) {
            assert_eq!(a.field.as_deref(), Some(p.field), "case {case}:\n{src}");
            assert_eq!(a.op, p.op, "case {case}");
            let got: Vec<&str> = a.orderings.iter().map(|o| o.name()).collect();
            assert_eq!(got, p.orderings, "case {case}");
            // The reported line really carries the access (mask alignment):
            // for multi-line calls it is the line of the method name.
            let line_text = src.lines().nth(a.line - 1).unwrap_or("");
            assert!(
                line_text.contains(&format!(".{}", method_of(p.op, &p.orderings))),
                "case {case}: line {} is {line_text:?}",
                a.line
            );
        }
    }
}

/// Maps a planted op back to the method-name substring its line carries.
fn method_of(op: OpKind, orderings: &[&str]) -> &'static str {
    match op {
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::Rmw if orderings.len() == 2 => "compare_exchange",
        OpKind::Rmw => "", // swap / fetch_add: the `.` check suffices
    }
}

#[test]
fn prop_field_keys_are_stable_under_reparse() {
    // Re-parsing the same text, or the same text shifted by a leading
    // comment line, must attribute every access to the same field key —
    // the pairing pools (and thus findings) may not depend on parse
    // incidentals.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA70_0002);
    for case in 0..500 {
        let (src, _) = random_file(&mut rng);
        let a = index_file(&file_of(&src));
        let b = index_file(&file_of(&src));
        let key = |ix: &scp_analyze::atomics::FileAtomics| {
            ix.accesses
                .iter()
                .map(|a| (a.line, a.field.clone(), a.op, a.orderings.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "case {case}: re-parse drifted");
        assert_eq!(a.fields, b.fields, "case {case}: field index drifted");

        let shifted_src = format!("// generated case {case}\n{src}");
        let shifted = index_file(&file_of(&shifted_src));
        let unshift = |ix: &scp_analyze::atomics::FileAtomics, by: usize| {
            ix.accesses
                .iter()
                .map(|a| (a.line - by, a.field.clone(), a.op, a.orderings.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            key(&a),
            unshift(&shifted, 1),
            "case {case}: a leading comment changed attribution\n{src}"
        );
    }
}

#[test]
fn prop_test_code_never_contributes() {
    // Everything inside `#[cfg(test)]` is indexed as in_test and the
    // pairing check stays silent even when the test accesses are wildly
    // unpaired.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA70_0003);
    for case in 0..500 {
        let n = 1 + next_below(&mut rng, 5) as usize;
        let mut body = String::new();
        for i in 0..n {
            let ord = ORDERINGS[next_below(&mut rng, ORDERINGS.len() as u64) as usize];
            body.push_str(&format!("        g.head.store({i}, Ordering::{ord});\n"));
        }
        let src = format!(
            "use std::sync::atomic::{{AtomicU64, Ordering}};\n\
             pub struct Gen {{ head: AtomicU64 }}\n\
             pub fn live() {{}}\n\
             #[cfg(test)]\n\
             mod tests {{\n\
             \x20   use super::*;\n\
             \x20   #[test]\n\
             \x20   fn t() {{\n\
             \x20       let g = Gen {{ head: AtomicU64::new(0) }};\n\
             {body}\
             \x20   }}\n\
             }}\n"
        );
        let file = file_of(&src);
        let ix = index_file(&file);
        assert!(
            ix.accesses.iter().all(|a| a.in_test),
            "case {case}: a test access escaped: {:?}\n{src}",
            ix.accesses
        );
        assert!(
            check_file(&file).is_empty(),
            "case {case}: pairing fired on test code\n{src}"
        );
    }
}
