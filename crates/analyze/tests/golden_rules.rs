//! Golden tests: one positive and one negative example per rule, plus
//! every accepted `scp-allow` suppression form. These pin down the rule
//! semantics the workspace relies on, so a lexer or rule-engine change
//! that silently widens or narrows a rule fails here first.

use scp_analyze::files::SourceFile;
use scp_analyze::rules::{check_file, Finding};

/// Runs the rule engine over `src` as if it were non-test library code in
/// `scp-sim` (a crate in scope for every rule).
fn findings(src: &str) -> Vec<Finding> {
    check_file(&SourceFile::from_source("crates/sim/src/golden.rs", src))
}

fn active_rules(src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings(src)
        .into_iter()
        .filter(|f| !f.suppressed)
        .map(|f| f.rule)
        .collect();
    rules.dedup();
    rules
}

// --- hash-iteration -----------------------------------------------------

#[test]
fn golden_hash_iteration_method_call() {
    let src = "use std::collections::HashMap;\n\
               fn f() {\n\
               \x20   let m: HashMap<u64, u64> = HashMap::new();\n\
               \x20   for (k, v) in m.iter() { let _ = (k, v); }\n\
               }\n";
    assert_eq!(active_rules(src), vec!["hash-iteration"]);
}

#[test]
fn golden_hash_iteration_for_loop() {
    let src = "use std::collections::HashSet;\n\
               fn f(s: HashSet<u64>) {\n\
               \x20   for k in &s { let _ = k; }\n\
               }\n";
    assert_eq!(active_rules(src), vec!["hash-iteration"]);
}

#[test]
fn golden_hash_iteration_ignores_btreemap() {
    let src = "use std::collections::BTreeMap;\n\
               fn f(m: BTreeMap<u64, u64>) -> u64 {\n\
               \x20   m.values().sum()\n\
               }\n";
    assert!(active_rules(src).is_empty());
}

#[test]
fn golden_hash_iteration_out_of_scope_crate() {
    // Only scp-core/scp-cluster/scp-sim/scp-cache are in scope.
    let src = "use std::collections::HashMap;\n\
               fn f(m: HashMap<u64, u64>) -> u64 { m.values().sum() }\n";
    let f = check_file(&SourceFile::from_source("crates/json/src/golden.rs", src));
    assert!(f.iter().all(|f| f.rule != "hash-iteration"), "{f:?}");
}

// --- wall-clock ---------------------------------------------------------

#[test]
fn golden_wall_clock_instant_now() {
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert_eq!(active_rules(src), vec!["wall-clock"]);
}

#[test]
fn golden_wall_clock_elapsed() {
    let src = "fn f(t: std::time::Instant) -> f64 { t.elapsed().as_secs_f64() }\n";
    assert_eq!(active_rules(src), vec!["wall-clock"]);
}

#[test]
fn golden_wall_clock_whitelisted_file() {
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    let f = check_file(&SourceFile::from_source("crates/sim/src/runner.rs", src));
    assert!(f.iter().all(|f| f.rule != "wall-clock"), "{f:?}");
}

#[test]
fn golden_wall_clock_type_position_ok() {
    let src = "fn f(deadline: std::time::Instant) -> bool { deadline.checked_add(D).is_some() }\n";
    assert!(active_rules(src).is_empty());
}

// --- env-entropy --------------------------------------------------------

#[test]
fn golden_env_entropy_randomstate() {
    let src = "fn f() { let _s = std::collections::hash_map::RandomState::new(); }\n";
    assert_eq!(active_rules(src), vec!["env-entropy"]);
}

#[test]
fn golden_env_entropy_env_var() {
    let src = "fn f() -> Option<String> { std::env::var(\"SCP_SEED\").ok() }\n";
    assert_eq!(active_rules(src), vec!["env-entropy"]);
}

// --- unsafe-hygiene -----------------------------------------------------

#[test]
fn golden_unsafe_without_safety_comment() {
    let src = "fn f(p: *const u8) -> u8 {\n\
               \x20   unsafe { *p }\n\
               }\n";
    assert_eq!(active_rules(src), vec!["unsafe-hygiene"]);
}

#[test]
fn golden_unsafe_with_safety_comment() {
    let src = "fn f(p: *const u8) -> u8 {\n\
               \x20   // SAFETY: caller guarantees p is valid for reads\n\
               \x20   unsafe { *p }\n\
               }\n";
    assert!(active_rules(src).is_empty());
}

// --- panic-path ---------------------------------------------------------

#[test]
fn golden_panic_path_unwrap_expect_panic() {
    for stmt in ["x.unwrap();", "x.expect(\"boom\");", "panic!(\"boom\");"] {
        let src = format!("fn f(x: Option<u64>) {{ {stmt} }}\n");
        assert_eq!(active_rules(&src), vec!["panic-path"], "{stmt}");
    }
}

#[test]
fn golden_panic_path_skips_cfg_test() {
    let src = "fn live() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1).unwrap(); }\n\
               }\n";
    assert!(active_rules(src).is_empty());
}

#[test]
fn golden_panic_path_skips_integration_tests() {
    let src = "fn t() { Some(1).unwrap(); }\n";
    let f = check_file(&SourceFile::from_source("crates/sim/tests/golden.rs", src));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn golden_panic_path_expect_method_on_result_type_ok() {
    // `.expect(..)?` is a Result-returning helper (scp-json's parser), not
    // a panic.
    let src = "fn f(p: &mut P) -> Result<(), E> { p.expect(b'{')?; Ok(()) }\n";
    assert!(active_rules(src).is_empty());
}

#[test]
fn golden_panic_path_in_comment_or_string_ok() {
    let src = "fn f() -> &'static str {\n\
               \x20   // calling unwrap() here would be wrong\n\
               \x20   \"do not unwrap() me\"\n\
               }\n";
    assert!(active_rules(src).is_empty());
}

// --- slice-index --------------------------------------------------------

#[test]
fn golden_slice_index_direct() {
    let src = "fn f(v: &[u64]) -> u64 { v[0] }\n";
    assert_eq!(active_rules(src), vec!["slice-index"]);
}

#[test]
fn golden_slice_index_ignores_macros_attrs_types() {
    let src = "#[derive(Debug)]\n\
               struct S { xs: Vec<[u8; 4]> }\n\
               fn f() -> Vec<u64> { vec![1, 2, 3] }\n";
    assert!(active_rules(src).is_empty());
}

// --- float-eq -----------------------------------------------------------

#[test]
fn golden_float_eq_literal_comparison() {
    let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
    assert_eq!(active_rules(src), vec!["float-eq"]);
}

#[test]
fn golden_float_eq_inequality() {
    let src = "fn f(x: f64) -> bool { x != 1.5 }\n";
    assert_eq!(active_rules(src), vec!["float-eq"]);
}

#[test]
fn golden_float_eq_integer_comparison_ok() {
    let src = "fn f(x: u64) -> bool { x == 0 }\n";
    assert!(active_rules(src).is_empty());
}

// --- ordering-comment ---------------------------------------------------

#[test]
fn golden_ordering_without_comment() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(a: &AtomicU64) -> u64 {\n\
               \x20   a.load(Ordering::Relaxed)\n\
               }\n";
    assert_eq!(active_rules(src), vec!["ordering-comment"]);
}

#[test]
fn golden_ordering_same_line_comment() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(a: &AtomicU64) -> u64 {\n\
               \x20   a.load(Ordering::Relaxed) // ORDERING: single-writer counter\n\
               }\n";
    assert!(active_rules(src).is_empty());
}

#[test]
fn golden_ordering_comment_block_above() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(a: &AtomicU64) -> u64 {\n\
               \x20   // ORDERING: relaxed is enough — this counter is\n\
               \x20   // monitoring-only and tolerates staleness.\n\
               \x20   a.load(Ordering::Relaxed)\n\
               }\n";
    assert!(active_rules(src).is_empty());
}

#[test]
fn golden_ordering_window_stops_at_code() {
    // A justification separated from the use by a code line does not count.
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(a: &AtomicU64) -> u64 {\n\
               \x20   // ORDERING: this comment is about the line below\n\
               \x20   let x = 1u64;\n\
               \x20   x + a.load(Ordering::Acquire)\n\
               }\n";
    assert_eq!(active_rules(src), vec!["ordering-comment"]);
}

#[test]
fn golden_ordering_exempt_file() {
    // The interleaving explorer matches on `Ordering` variants as data;
    // requiring a justification per match arm would be noise.
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(a: &AtomicU64) -> u64 {\n\
               \x20   a.load(Ordering::Relaxed)\n\
               }\n";
    let f = check_file(&SourceFile::from_source(
        "crates/analyze/src/interleave.rs",
        src,
    ));
    assert!(f.iter().all(|f| f.rule != "ordering-comment"), "{f:?}");
}

// --- concurrency-primitive ----------------------------------------------

#[test]
fn golden_concurrency_mutex() {
    let src = "use std::sync::Mutex;\n\
               fn f() -> u64 { *Mutex::new(7u64).lock().unwrap_or_else(|e| e.into_inner()) }\n";
    let rules = active_rules(src);
    assert!(rules.contains(&"concurrency-primitive"), "{rules:?}");
}

#[test]
fn golden_concurrency_thread_spawn() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(active_rules(src), vec!["concurrency-primitive"]);
}

#[test]
fn golden_concurrency_static_mut() {
    let src = "static mut COUNTER: u64 = 0;\n";
    assert_eq!(active_rules(src), vec!["concurrency-primitive"]);
}

#[test]
fn golden_concurrency_lock_whitelisted_file() {
    // The interleaving explorer models a scheduler with a real
    // Mutex/Condvar pair; it is the only file on the lock whitelist.
    let src = "use std::sync::Mutex;\n\
               fn f() { let _m = Mutex::new(0u64); }\n";
    let f = check_file(&SourceFile::from_source(
        "crates/analyze/src/interleave.rs",
        src,
    ));
    assert!(f.iter().all(|f| f.rule != "concurrency-primitive"), "{f:?}");
}

#[test]
fn golden_concurrency_mutex_in_loadgen_fires() {
    // PR 8 replaced the loadgen's `Mutex<VecDeque> + Condvar` intake with
    // lock-free batch rings; the spawn whitelist still covers its worker
    // fan-out, but a returning lock must fire.
    let src = "use std::sync::Mutex;\n\
               fn f() { let _m = Mutex::new(0u64); }\n";
    let f = check_file(&SourceFile::from_source("crates/serve/src/loadgen.rs", src));
    assert!(
        f.iter().any(|f| f.rule == "concurrency-primitive"),
        "a Mutex returning to loadgen.rs must fire: {f:?}"
    );
}

#[test]
fn golden_concurrency_spawn_in_loadgen_allowed() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    let f = check_file(&SourceFile::from_source("crates/serve/src/loadgen.rs", src));
    assert!(f.iter().all(|f| f.rule != "concurrency-primitive"), "{f:?}");
}

#[test]
fn golden_concurrency_spawn_whitelist_does_not_cover_locks() {
    // The runner fans out worker threads but holds no locks; its spawn
    // whitelisting must not quietly license lock types.
    let src = "use std::sync::RwLock;\n\
               fn f() { let _m = RwLock::new(0u64); }\n";
    let f = check_file(&SourceFile::from_source("crates/sim/src/runner.rs", src));
    assert!(f.iter().any(|f| f.rule == "concurrency-primitive"), "{f:?}");
}

#[test]
fn golden_concurrency_static_mut_fires_everywhere() {
    // `static mut` has no whitelist — even the explorer may not use it.
    let src = "static mut COUNTER: u64 = 0;\n";
    let f = check_file(&SourceFile::from_source(
        "crates/analyze/src/interleave.rs",
        src,
    ));
    assert!(f.iter().any(|f| f.rule == "concurrency-primitive"), "{f:?}");
}

#[test]
fn golden_concurrency_lookalike_names_ok() {
    // `spawn`/`scope` only count with a `thread::` or method receiver,
    // and `Mutex` must be the whole token.
    let src = "fn spawner() {}\n\
               fn f(scope_id: u64) -> u64 { spawner(); scope_id }\n";
    assert!(active_rules(src).is_empty());
}

// --- narrow-cast --------------------------------------------------------

#[test]
fn golden_narrow_cast_u32() {
    let src = "fn f(x: u64) -> u32 { x as u32 }\n";
    assert_eq!(active_rules(src), vec!["narrow-cast"]);
}

#[test]
fn golden_narrow_cast_widening_ok() {
    let src = "fn f(x: u32) -> u64 { x as u64 }\n\
               fn g(x: u32) -> usize { x as usize }\n\
               fn h(x: u32) -> f64 { x as f64 }\n";
    assert!(active_rules(src).is_empty());
}

#[test]
fn golden_narrow_cast_try_from_ok() {
    let src = "fn f(x: u64) -> u32 { u32::try_from(x).unwrap_or(u32::MAX) }\n";
    assert!(active_rules(src).is_empty());
}

// --- suppression forms --------------------------------------------------

#[test]
fn golden_allow_on_preceding_line() {
    let src = "fn f(v: &[u64]) -> u64 {\n\
               \x20   // scp-allow(slice-index): validated non-empty by caller\n\
               \x20   v[0]\n\
               }\n";
    let f = findings(src);
    assert!(f.iter().all(|f| f.suppressed), "{f:?}");
    assert_eq!(f.len(), 1, "finding still recorded, just suppressed");
}

#[test]
fn golden_allow_on_same_line() {
    let src = "fn f(v: &[u64]) -> u64 { v[0] } // scp-allow(slice-index): caller checks\n";
    let f = findings(src);
    assert!(f.iter().all(|f| f.suppressed), "{f:?}");
}

#[test]
fn golden_allow_requires_reason() {
    let src = "fn f(v: &[u64]) -> u64 {\n\
               \x20   // scp-allow(slice-index)\n\
               \x20   v[0]\n\
               }\n";
    let rules = active_rules(src);
    assert!(rules.contains(&"invalid-pragma"), "{rules:?}");
    assert!(rules.contains(&"slice-index"), "not suppressed: {rules:?}");
}

#[test]
fn golden_allow_unknown_rule_is_invalid() {
    let src = "// scp-allow(no-such-rule): because\nfn f() {}\n";
    assert_eq!(active_rules(src), vec!["invalid-pragma"]);
}

#[test]
fn golden_allow_suppressing_nothing_is_flagged() {
    let src = "// scp-allow(slice-index): nothing here\nfn f() {}\n";
    assert_eq!(active_rules(src), vec!["unused-allow"]);
}

#[test]
fn golden_allow_only_covers_named_rule() {
    let src = "fn f(v: &[f64]) -> bool {\n\
               \x20   // scp-allow(slice-index): length checked\n\
               \x20   v[0] == 0.0\n\
               }\n";
    let f = findings(src);
    let active: Vec<_> = f.iter().filter(|f| !f.suppressed).map(|f| f.rule).collect();
    assert_eq!(active, vec!["float-eq"], "float-eq must survive: {f:?}");
}

// --- suppression forms for the new rule families ------------------------

#[test]
fn golden_allow_narrow_cast_preceding_line() {
    let src = "fn f(x: u64) -> u32 {\n\
               \x20   // scp-allow(narrow-cast): hash is pre-masked to 32 bits\n\
               \x20   x as u32\n\
               }\n";
    let f = findings(src);
    assert!(f.iter().all(|f| f.suppressed), "{f:?}");
    assert_eq!(f.len(), 1, "finding still recorded, just suppressed");
}

#[test]
fn golden_allow_ordering_comment_same_line() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) } \
               // scp-allow(ordering-comment): justified in the module doc\n";
    let f = findings(src);
    assert!(f.iter().all(|f| f.suppressed), "{f:?}");
}

#[test]
fn golden_allow_concurrency_primitive_with_reason() {
    let src = "fn f() {\n\
               \x20   // scp-allow(concurrency-primitive): test fixture thread\n\
               \x20   std::thread::spawn(|| {});\n\
               }\n";
    let f = findings(src);
    assert!(f.iter().all(|f| f.suppressed), "{f:?}");
}

#[test]
fn golden_allow_new_rule_requires_reason() {
    let src = "fn f(x: u64) -> u32 {\n\
               \x20   // scp-allow(narrow-cast)\n\
               \x20   x as u32\n\
               }\n";
    let rules = active_rules(src);
    assert!(rules.contains(&"invalid-pragma"), "{rules:?}");
    assert!(rules.contains(&"narrow-cast"), "not suppressed: {rules:?}");
}

#[test]
fn golden_allow_new_rule_names_are_known_to_the_meta_rules() {
    // A new-rule pragma that suppresses nothing is `unused-allow`, not
    // `invalid-pragma` — the name itself is recognized.
    for rule in ["ordering-comment", "concurrency-primitive", "narrow-cast"] {
        let src = format!("// scp-allow({rule}): nothing here\nfn f() {{}}\n");
        assert_eq!(active_rules(&src), vec!["unused-allow"], "{rule}");
    }
}
