//! Seeded randomized properties of the lexer and the rule engine.
//!
//! The analyzer's whole correctness story is "rules never see comment or
//! literal text". These tests generate random nestings of comments,
//! strings, raw strings and char literals around rule-triggering payloads
//! (`unwrap()`, `Instant::now()`, `v[0]`, ...) and assert the masks and
//! the rules behave. The generator is the workspace's own deterministic
//! Xoshiro256** (PR-1 style), so any failure reproduces exactly from the
//! printed case number.

use scp_analyze::files::SourceFile;
use scp_analyze::lexer::mask;
use scp_analyze::rules::check_file;
use scp_workload::rng::{next_below, Rng, Xoshiro256StarStar};

/// Text that, if it leaked into the code mask, would trip at least one
/// rule when wrapped in a function body.
const PAYLOADS: &[&str] = &[
    "x.unwrap()",
    "x.expect(\\\"boom\\\")",
    "std::time::Instant::now()",
    "v[0]",
    "y == 0.0",
    "unsafe { *p }",
    "m.keys()",
];

/// One random non-code wrapper around `payload`.
fn wrap(rng: &mut dyn Rng, payload: &str) -> String {
    match next_below(rng, 7) {
        0 => format!("// {payload}\n"),
        1 => format!("/* {payload} */"),
        // Nested block comment.
        2 => format!("/* a /* {payload} */ b */"),
        3 => format!("let _s = \"{payload}\";"),
        4 => format!("let _s = r#\"{}\"#;", payload.replace('\\', "")),
        5 => format!(
            "let _s = r##\"quote \"# inside {}\"##;",
            payload.replace('\\', "")
        ),
        // Doc comment.
        _ => format!("/// {payload}\n"),
    }
}

/// Builds a whole random file: N wrapped payloads inside a function, with
/// occasional innocuous real code interleaved.
fn random_file(rng: &mut dyn Rng) -> String {
    let mut out = String::from("fn generated(v: &[u64]) -> u64 {\n");
    let items = 1 + next_below(rng, 8) as usize;
    for _ in 0..items {
        let payload = PAYLOADS[next_below(rng, PAYLOADS.len() as u64) as usize];
        out.push_str("    ");
        out.push_str(&wrap(rng, payload));
        out.push('\n');
        if next_below(rng, 3) == 0 {
            out.push_str("    let _k = v.len();\n");
        }
    }
    out.push_str("    v.len() as u64\n}\n");
    out
}

#[test]
fn prop_masks_are_byte_aligned_and_complementary() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED_0001);
    for case in 0..500 {
        let src = random_file(&mut rng);
        let m = mask(&src);
        assert_eq!(m.code.len(), src.len(), "case {case}: code mask length");
        assert_eq!(
            m.comments.len(),
            src.len(),
            "case {case}: comment mask length"
        );
        for (i, ((s, c), k)) in src
            .bytes()
            .zip(m.code.bytes())
            .zip(m.comments.bytes())
            .enumerate()
        {
            // Every mask byte is either the source byte or a space.
            assert!(c == s || c == b' ', "case {case}: code[{i}]");
            assert!(k == s || k == b' ', "case {case}: comments[{i}]");
            // Newlines survive in both masks; a byte never survives in both
            // masks unless it is whitespace.
            if s == b'\n' {
                assert_eq!(c, b'\n', "case {case}: newline lost in code[{i}]");
                assert_eq!(k, b'\n', "case {case}: newline lost in comments[{i}]");
            } else if !s.is_ascii_whitespace() {
                assert!(
                    c == b' ' || k == b' ',
                    "case {case}: byte {i} ({:?}) in both masks",
                    s as char
                );
            }
        }
    }
}

#[test]
fn prop_wrapped_payloads_never_produce_findings() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED_0002);
    for case in 0..500 {
        let src = random_file(&mut rng);
        let file = SourceFile::from_source("crates/sim/src/generated.rs", &src);
        let findings = check_file(&file);
        assert!(
            findings.is_empty(),
            "case {case}: rules fired on non-code text:\n{src}\n{findings:?}"
        );
    }
}

#[test]
fn prop_unwrapped_payload_is_always_caught() {
    // Control experiment: the same payloads *as real code* do produce
    // findings — otherwise the previous test would pass vacuously.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED_0003);
    for case in 0..200 {
        let idx = next_below(&mut rng, PAYLOADS.len() as u64) as usize;
        let payload = PAYLOADS[idx].replace('\\', "");
        let src = format!(
            "fn generated(v: &[u64], x: Option<u64>, y: f64, p: *const u8,\n\
             \x20            m: &std::collections::HashMap<u64, u64>) {{\n\
             \x20   let _ = {payload};\n\
             }}\n"
        );
        let file = SourceFile::from_source("crates/sim/src/generated.rs", &src);
        let findings = check_file(&file);
        assert!(
            !findings.is_empty(),
            "case {case}: payload `{payload}` produced no finding"
        );
    }
}

#[test]
fn prop_mask_roundtrip_is_idempotent_on_code_mask() {
    // Masking the code mask again must be a fixed point: everything
    // non-code was already blanked, and blanking is idempotent.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED_0004);
    for case in 0..200 {
        let src = random_file(&mut rng);
        let once = mask(&src);
        let twice = mask(&once.code);
        assert_eq!(
            once.code, twice.code,
            "case {case}: code mask not a fixed point"
        );
    }
}
