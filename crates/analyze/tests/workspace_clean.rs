//! The tier-1 gate: the workspace itself must analyze clean.
//!
//! "Clean" means (a) zero deny-rule violations and zero ratchet
//! regressions beyond the committed `analyze-baseline.json`, and (b) the
//! committed baseline exactly matches what the analyzer observes (so a
//! debt *improvement* must be locked in with `--update-baseline` before
//! it can merge — the ratchet only turns one way).

use scp_analyze::analyze_workspace;
use scp_analyze::files::find_workspace_root;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("analyze crate lives inside the workspace")
}

#[test]
fn workspace_has_no_violations() {
    let report = analyze_workspace(&workspace_root()).expect("analysis runs");
    assert!(report.files_scanned > 50, "workspace walk looks truncated");
    assert!(
        report.deny_clean(),
        "static-analysis violations (fix them or add a justified \
         `// scp-allow(<rule>): <reason>`):\n{}",
        report.render_human(true)
    );
}

#[test]
fn committed_baseline_is_in_sync() {
    let report = analyze_workspace(&workspace_root()).expect("analysis runs");
    assert!(
        report.baseline_in_sync(),
        "analyze-baseline.json is out of sync with the tree; run \
         `cargo run -p scp-analyze -- --update-baseline` and commit the \
         result:\n{}",
        report.baseline_diff.join("\n")
    );
}

#[test]
fn scp_core_carries_no_ratcheted_debt() {
    // PR-2 burned scp-core's panic-safety debt to zero; keep it there.
    let report = analyze_workspace(&workspace_root()).expect("analysis runs");
    let core_debt: Vec<_> = report
        .observed
        .counts
        .iter()
        .filter(|(file, _)| file.starts_with("crates/core/"))
        .collect();
    assert!(
        core_debt.is_empty(),
        "scp-core regained ratcheted debt: {core_debt:?}"
    );
}
