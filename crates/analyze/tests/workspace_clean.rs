//! The tier-1 gate: the workspace itself must analyze clean.
//!
//! "Clean" means (a) zero deny-rule violations and zero ratchet
//! regressions beyond the committed `analyze-baseline.json`, and (b) the
//! committed baseline exactly matches what the analyzer observes (so a
//! debt *improvement* must be locked in with `--update-baseline` before
//! it can merge — the ratchet only turns one way).

use scp_analyze::analyze_workspace;
use scp_analyze::files::find_workspace_root;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("analyze crate lives inside the workspace")
}

#[test]
fn workspace_has_no_violations() {
    let report = analyze_workspace(&workspace_root()).expect("analysis runs");
    assert!(report.files_scanned > 50, "workspace walk looks truncated");
    assert!(
        report.deny_clean(),
        "static-analysis violations (fix them or add a justified \
         `// scp-allow(<rule>): <reason>`):\n{}",
        report.render_human(true)
    );
}

#[test]
fn committed_baseline_is_in_sync() {
    let report = analyze_workspace(&workspace_root()).expect("analysis runs");
    assert!(
        report.baseline_in_sync(),
        "analyze-baseline.json is out of sync with the tree; run \
         `cargo run -p scp-analyze -- --update-baseline` and commit the \
         result:\n{}",
        report.baseline_diff.join("\n")
    );
}

#[test]
fn committed_panic_surface_is_in_sync_and_never_grows() {
    // The set-based ratchet: a pub fn may leave the committed
    // `panic-surface.json` freely, but entering it (or drifting out of
    // sync) must be an explicit `--update-baseline` commit.
    let root = workspace_root();
    let surface = scp_analyze::analyze_panic_surface(&root).expect("call graph builds");
    assert!(
        surface.no_regressions(),
        "pub fns entered the panic surface:\n{}",
        surface.added.join("\n")
    );
    assert!(
        surface.in_sync(),
        "panic-surface.json is out of sync with the tree; run \
         `cargo run -p scp-analyze -- --update-baseline` and commit the \
         result:\nadded: {}\nremoved: {}",
        surface.added.join(", "),
        surface.removed.join(", ")
    );
}

#[test]
fn committed_determinism_surface_is_in_sync_and_never_grows() {
    // Same set-ratchet as the panic surface, for nondeterminism taint:
    // a pub fn entering `determinism-surface.json` fails the deny gate,
    // drift fails here, improvements re-lock with `--update-baseline`.
    let root = workspace_root();
    let surface = scp_analyze::analyze_det_surface(&root).expect("call graph builds");
    assert!(
        surface.no_regressions(),
        "pub fns entered the determinism surface:\n{}",
        surface.added.join("\n")
    );
    assert!(
        surface.in_sync(),
        "determinism-surface.json is out of sync with the tree; run \
         `cargo run -p scp-analyze -- --update-baseline` and commit the \
         result:\nadded: {}\nremoved: {}",
        surface.added.join(", "),
        surface.removed.join(", ")
    );
}

#[test]
fn determinism_surface_is_empty() {
    // PR-10 burned the surface to zero: every nondeterminism source
    // either got a real fix (the loadgen's pow_attempts orderings) or a
    // justified `// DETERMINISM:` laundering point. Keep it at zero —
    // this is stronger than the ratchet, which would tolerate re-locked
    // additions.
    let root = workspace_root();
    let surface = scp_analyze::analyze_det_surface(&root).expect("call graph builds");
    assert!(
        surface.observed.functions.is_empty(),
        "pub fns reachable by unlaundered nondeterminism:\n{}",
        surface
            .observed
            .functions
            .iter()
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );
    // In particular the three crates whose outputs feed journals and
    // reports are taint-free.
    for crate_name in ["scp-core", "scp-cluster", "scp-sim"] {
        let per = surface.per_crate.get(crate_name);
        assert_eq!(
            per.map_or(0, |c| c.reachable),
            0,
            "{crate_name} carries determinism debt"
        );
    }
}

#[test]
fn panic_surface_stays_at_or_below_its_pr9_size() {
    // PR-10's trait-call precision fix plus the analyzer's own
    // slice-index burndown shrank the panic surface below its previous
    // 115 entries; the count must never silently climb back.
    let root = workspace_root();
    let surface = scp_analyze::analyze_panic_surface(&root).expect("call graph builds");
    let n = surface.observed.functions.len();
    assert!(n <= 115, "panic surface grew to {n} entries (cap 115)");
}

#[test]
fn new_analyzer_code_carries_no_ratcheted_debt() {
    // Everything added by the flow-aware analyzer (parser, call graph,
    // surface ratchet, interleaving explorer, taint and atomics passes)
    // was written index-free and unwrap-free; keep it that way.
    let report = analyze_workspace(&workspace_root()).expect("analysis runs");
    let fresh: Vec<_> = report
        .observed
        .counts
        .iter()
        .filter(|(file, _)| {
            [
                "crates/analyze/src/syntax.rs",
                "crates/analyze/src/callgraph.rs",
                "crates/analyze/src/surface.rs",
                "crates/analyze/src/interleave.rs",
                "crates/analyze/src/taint.rs",
                "crates/analyze/src/atomics.rs",
                "crates/analyze/src/lexer.rs",
                "crates/analyze/src/pragma.rs",
                "crates/analyze/src/files.rs",
                "crates/analyze/src/rules.rs",
            ]
            .contains(&file.as_str())
        })
        .collect();
    assert!(
        fresh.is_empty(),
        "new analyzer modules regained ratcheted debt: {fresh:?}"
    );
}

#[test]
fn scp_core_carries_no_ratcheted_debt() {
    // PR-2 burned scp-core's panic-safety debt to zero; keep it there.
    let report = analyze_workspace(&workspace_root()).expect("analysis runs");
    let core_debt: Vec<_> = report
        .observed
        .counts
        .iter()
        .filter(|(file, _)| file.starts_with("crates/core/"))
        .collect();
    assert!(
        core_debt.is_empty(),
        "scp-core regained ratcheted debt: {core_debt:?}"
    );
}
