//! Seeded randomized properties of the brace-tree item parser.
//!
//! The parser promises totality and structural fidelity on the *code
//! mask*: comments and literal text never influence the item tree. These
//! tests generate random item forests (fns, mods, impls, structs, with
//! `#[cfg(test)]` sprinkled on preludes) around decoy text — commented-out
//! items, brace-bearing strings, raw strings — and assert four properties:
//!
//! 1. **recovery + cfg(test) agreement** — every generated fn is found
//!    exactly once, with the right qualified path, `pub`-ness and
//!    (inherited) `cfg_test` flag;
//! 2. **mask alignment** — fn spans index the code mask at the right
//!    places: body braces sit on the span's interior boundaries, the
//!    name is inside the span, and `lines` agrees with newline counts;
//! 3. **byte coverage** — top-level item spans are sorted, disjoint and
//!    cover every non-whitespace byte of the code mask;
//! 4. **idempotent re-parse** — parsing the code mask of the code mask
//!    yields the identical tree.
//!
//! The generator is the workspace's own deterministic Xoshiro256**, so
//! any failure reproduces exactly from the printed case number.

use scp_analyze::lexer::mask;
use scp_analyze::syntax::{parse, ItemKind, ParsedFile};
use scp_workload::rng::{next_below, Rng, Xoshiro256StarStar};

/// What the generator promised to put in the file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Expect {
    qualified: String,
    is_pub: bool,
    cfg_test: bool,
}

/// Decoy lines that must not perturb the item tree: every one of them
/// mentions item keywords or braces inside comments or literals.
const DECOYS: &[&str] = &[
    "// fn decoy() { unbalanced {{",
    "/* mod fake { impl Fake { } */",
    "let _s = \"fn in_string(a: u64) -> u64 { a }\";",
    "let _r = r#\"struct InRaw { field: u64 }\"#;",
    "let _c = '{';",
    "/// fn doc_decoy() {}",
];

struct Gen<'a> {
    rng: &'a mut dyn Rng,
    src: String,
    expected: Vec<Expect>,
    counter: usize,
}

impl Gen<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.src.push_str("    ");
        }
    }

    fn decoy_line(&mut self, depth: usize) {
        let i = next_below(self.rng, DECOYS.len() as u64) as usize;
        self.indent(depth);
        self.src
            .push_str(DECOYS.get(i).copied().unwrap_or("// decoy"));
        self.src.push('\n');
    }

    /// Emits one fn item and records the expectation.
    fn emit_fn(&mut self, path: &[String], inherited_test: bool, depth: usize) {
        let name = self.fresh("f");
        let own_test = next_below(self.rng, 5) == 0;
        let is_pub = next_below(self.rng, 2) == 0;
        if own_test {
            self.indent(depth);
            self.src.push_str("#[cfg(test)]\n");
        }
        if next_below(self.rng, 4) == 0 {
            self.indent(depth);
            self.src.push_str("#[inline]\n");
        }
        self.indent(depth);
        if is_pub {
            self.src.push_str("pub ");
        }
        self.src.push_str("fn ");
        self.src.push_str(&name);
        self.src.push_str("(v: u64) -> u64 {\n");
        let noise = next_below(self.rng, 3);
        for _ in 0..noise {
            self.decoy_line(depth + 1);
        }
        if next_below(self.rng, 3) == 0 {
            // Real nested braces in statement position.
            self.indent(depth + 1);
            self.src.push_str("if v > 1 { let _ = v; }\n");
        }
        self.indent(depth + 1);
        self.src.push_str("v + 1\n");
        self.indent(depth);
        self.src.push_str("}\n");
        let qualified = if path.is_empty() {
            name
        } else {
            format!("{}::{name}", path.join("::"))
        };
        self.expected.push(Expect {
            qualified,
            is_pub,
            cfg_test: inherited_test || own_test,
        });
    }

    /// Emits one item of any kind; recursion is bounded by `depth`.
    fn emit_item(&mut self, path: &mut Vec<String>, inherited_test: bool, depth: usize) {
        match next_below(self.rng, if depth < 2 { 6 } else { 3 }) {
            0 | 1 => self.emit_fn(path, inherited_test, depth),
            2 => {
                // A fn-free type item: must not contribute to `fns`.
                let name = self.fresh("S");
                self.indent(depth);
                self.src.push_str("struct ");
                self.src.push_str(&name);
                self.src.push_str(" { field: u64 }\n");
            }
            3 => {
                let name = self.fresh("m");
                let own_test = next_below(self.rng, 3) == 0;
                if own_test {
                    self.indent(depth);
                    self.src.push_str("#[cfg(test)]\n");
                }
                self.indent(depth);
                if next_below(self.rng, 2) == 0 {
                    self.src.push_str("pub ");
                }
                self.src.push_str("mod ");
                self.src.push_str(&name);
                self.src.push_str(" {\n");
                path.push(name);
                let n = 1 + next_below(self.rng, 2);
                for _ in 0..n {
                    self.emit_item(path, inherited_test || own_test, depth + 1);
                }
                path.pop();
                self.indent(depth);
                self.src.push_str("}\n");
            }
            _ => {
                let name = self.fresh("T");
                self.indent(depth);
                self.src.push_str("impl ");
                self.src.push_str(&name);
                self.src.push_str(" {\n");
                path.push(name);
                let n = 1 + next_below(self.rng, 2);
                for _ in 0..n {
                    self.emit_fn(path, inherited_test, depth + 1);
                }
                path.pop();
                self.indent(depth);
                self.src.push_str("}\n");
            }
        }
    }
}

/// Builds one random file and the list of fns it is expected to parse to.
fn random_file(rng: &mut dyn Rng) -> (String, Vec<Expect>) {
    let mut g = Gen {
        rng,
        src: String::new(),
        expected: Vec::new(),
        counter: 0,
    };
    let items = 2 + next_below(g.rng, 4);
    let mut path = Vec::new();
    for _ in 0..items {
        g.emit_item(&mut path, false, 0);
    }
    (g.src, g.expected)
}

fn sorted_fns(parsed: &ParsedFile) -> Vec<Expect> {
    let mut got: Vec<Expect> = parsed
        .fns
        .iter()
        .map(|f| Expect {
            qualified: f.qualified.clone(),
            is_pub: f.is_pub,
            cfg_test: f.cfg_test,
        })
        .collect();
    got.sort();
    got
}

#[test]
fn prop_parser_recovers_every_fn_with_cfg_test_agreement() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED_0011);
    for case in 0..500 {
        let (src, mut expected) = random_file(&mut rng);
        let parsed = parse(&mask(&src));
        expected.sort();
        assert_eq!(
            sorted_fns(&parsed),
            expected,
            "case {case}: fn recovery mismatch on\n{src}"
        );
    }
}

#[test]
fn prop_fn_spans_align_with_the_code_mask() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED_0012);
    for case in 0..500 {
        let (src, _) = random_file(&mut rng);
        let masked = mask(&src);
        let code = masked.code.as_bytes();
        let parsed = parse(&masked);
        for f in &parsed.fns {
            let (s, e) = f.span;
            assert!(s < e && e <= code.len(), "case {case}: span bounds {f:?}");
            let slice = masked.code.get(s..e).unwrap_or("");
            assert!(
                slice.contains(&format!("fn {}", f.name)),
                "case {case}: span misses header of {}",
                f.qualified
            );
            let (bs, be) = f.body.unwrap_or((0, 0));
            assert!(s < bs && be < e, "case {case}: body outside span {f:?}");
            assert_eq!(
                code.get(bs.wrapping_sub(1)).copied(),
                Some(b'{'),
                "case {case}: body start not after a brace {f:?}"
            );
            assert_eq!(
                code.get(be).copied(),
                Some(b'}'),
                "case {case}: body end not at a brace {f:?}"
            );
            // Line numbers agree with newline counts over the span.
            let text_start = s + slice.len() - slice.trim_start().len();
            let first = src
                .get(..text_start)
                .map(|p| p.matches('\n').count() + 1)
                .unwrap_or(0);
            let last = src
                .get(..e)
                .map(|p| p.matches('\n').count() + 1)
                .unwrap_or(0);
            assert_eq!(f.lines, (first, last), "case {case}: lines of {f:?}");
        }
    }
}

#[test]
fn prop_top_level_spans_cover_every_code_byte() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED_0013);
    for case in 0..500 {
        let (src, _) = random_file(&mut rng);
        let masked = mask(&src);
        let code = masked.code.as_bytes();
        let parsed = parse(&masked);
        let mut prev_end = 0usize;
        for item in &parsed.items {
            let (s, e) = item.span;
            assert!(
                s >= prev_end,
                "case {case}: overlapping top-level spans at {s}"
            );
            // The gap between consecutive items is whitespace-only.
            for (i, b) in code.get(prev_end..s).unwrap_or(&[]).iter().enumerate() {
                assert!(
                    b.is_ascii_whitespace(),
                    "case {case}: uncovered code byte {:?} at {}",
                    *b as char,
                    prev_end + i
                );
            }
            prev_end = e;
        }
        for (i, b) in code.get(prev_end..).unwrap_or(&[]).iter().enumerate() {
            assert!(
                b.is_ascii_whitespace(),
                "case {case}: uncovered trailing byte {:?} at {}",
                *b as char,
                prev_end + i
            );
        }
        assert_eq!(
            parsed
                .items
                .iter()
                .filter(|i| i.kind == ItemKind::Type)
                .flat_map(|i| i.children.iter())
                .count(),
            0,
            "case {case}: struct items must be leaves"
        );
    }
}

#[test]
fn prop_reparse_of_the_code_mask_is_identical() {
    // The code mask is itself valid "already-masked" input: re-masking and
    // re-parsing must be a fixed point of the whole pipeline.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED_0014);
    for case in 0..500 {
        let (src, _) = random_file(&mut rng);
        let once = mask(&src);
        let twice = mask(&once.code);
        let a = parse(&once);
        let b = parse(&twice);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "case {case}: re-parse diverged on\n{src}"
        );
    }
}
