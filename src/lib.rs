//! # Secure Cache Provision
//!
//! A faithful, laptop-scale reproduction of *"Secure Cache Provision:
//! Provable DDOS Prevention for Randomly Partitioned Services with
//! Replication"* (Chu, Guan, Lui, Cai, Shi — IEEE ICDCS Workshops 2013),
//! including the Fan et al. (SoCC'11) no-replication baseline it extends.
//!
//! The headline result: a popularity-based front-end cache of
//! `c* = n·(ln ln n / ln d) + n·k' + 1` entries makes **every** adversarial
//! access pattern ineffective against a randomly partitioned cluster of `n`
//! nodes with replication factor `d` — independent of how many items the
//! service stores.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] (`scp-core`) — the paper's theory: bounds, attack gain,
//!   adversarial strategies, cache provisioning.
//! * [`cluster`] (`scp-cluster`) — partitioners, replica selection, node
//!   failures, capacities.
//! * [`cache`] (`scp-cache`) — perfect/LRU/LFU/FIFO/CLOCK/SLRU/TinyLFU
//!   front-end caches.
//! * [`workload`] (`scp-workload`) — access patterns, Zipf/alias samplers,
//!   query streams, traces.
//! * [`sim`] (`scp-sim`) — rate-propagation, query-sampling and
//!   discrete-event engines plus the parallel experiment runner.
//! * [`serve`] (`scp-serve`) — the sharded live-serving engine: admission
//!   cache, batched fan-out over SPSC queues, backpressure and per-shard
//!   capacity shedding.
//! * [`json`] (`scp-json`) — the dependency-free JSON value used by every
//!   report and journal.
//!
//! Most programs only need the [`prelude`].
//!
//! # Quickstart
//!
//! Size a cache with the paper's theory, then measure the strongest
//! attack against a simulated cluster — all through the prelude:
//!
//! ```
//! use secure_cache_provision::prelude::*;
//!
//! // A 1000-node cluster with 3-way replication, 1M items, 100k qps,
//! // and a 200-entry front-end cache.
//! let params = SystemParams::new(1000, 3, 200, 1_000_000, 1e5)?;
//! let report = Provisioner::default().report(&params);
//! assert!(!report.is_protected); // c = 200 is below critical
//!
//! // Simulate the optimal x = c + 1 attack against that system. The
//! // builder defaults to the paper baseline; override what differs.
//! let cfg = SimConfig::builder()
//!     .nodes(params.nodes())
//!     .cache_capacity(params.cache_size())
//!     .attack_x(params.cache_size() as u64 + 1)
//!     .seed(2013)
//!     .build()?;
//! let gain = run_rate_simulation(&cfg)?.gain().value();
//! assert!(gain > 1.0, "under-provisioned: the attack is effective");
//!
//! // Provision the recommended size and the same attack collapses.
//! let safe = cfg
//!     .to_builder()
//!     .cache_capacity(report.critical_cache_size)
//!     .attack_x(report.critical_cache_size as u64 + 1)
//!     .build()?;
//! assert!(run_rate_simulation(&safe)?.gain().value() <= 1.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! To serve that system live instead of simulating it, hand the same
//! `SimConfig` to [`serve::ServeConfig`] and run
//! [`serve::run_threaded`] (or `scp-serve` from the command line).
//!
//! See `examples/` for end-to-end attack simulations and `crates/repro`
//! for the binaries that regenerate every figure of the paper.

#![warn(missing_docs)]

pub use scp_cache as cache;
pub use scp_cluster as cluster;
pub use scp_core as core;
pub use scp_json as json;
pub use scp_serve as serve;
pub use scp_sim as sim;
pub use scp_workload as workload;

/// The one-stop import for programs built on this workspace.
///
/// ```
/// use secure_cache_provision::prelude::*;
///
/// let cfg = SimConfig::builder().nodes(100).seed(7).build()?;
/// let report = run_rate_simulation(&cfg)?;
/// assert!(report.gain().value() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub mod prelude {
    pub use scp_core::params::SystemParams;
    pub use scp_core::provision::Provisioner;
    pub use scp_json::Json;
    pub use scp_serve::{
        repeat_serve_journaled, run_deterministic, run_threaded, ServeConfig, ServeReport,
    };
    pub use scp_sim::config::{AdmissionKind, CacheKind, PartitionerKind, SelectorKind};
    pub use scp_sim::query_engine::run_query_simulation;
    pub use scp_sim::rate_engine::run_rate_simulation;
    pub use scp_sim::runner::{repeat_rate_simulation_journaled, StopRule};
    pub use scp_sim::{LoadReport, SimConfig, SimConfigBuilder, SimError};
    pub use scp_workload::AccessPattern;
}
