//! # Secure Cache Provision
//!
//! A faithful, laptop-scale reproduction of *"Secure Cache Provision:
//! Provable DDOS Prevention for Randomly Partitioned Services with
//! Replication"* (Chu, Guan, Lui, Cai, Shi — IEEE ICDCS Workshops 2013),
//! including the Fan et al. (SoCC'11) no-replication baseline it extends.
//!
//! The headline result: a popularity-based front-end cache of
//! `c* = n·(ln ln n / ln d) + n·k' + 1` entries makes **every** adversarial
//! access pattern ineffective against a randomly partitioned cluster of `n`
//! nodes with replication factor `d` — independent of how many items the
//! service stores.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] (`scp-core`) — the paper's theory: bounds, attack gain,
//!   adversarial strategies, cache provisioning.
//! * [`cluster`] (`scp-cluster`) — partitioners, replica selection, node
//!   failures, capacities.
//! * [`cache`] (`scp-cache`) — perfect/LRU/LFU/FIFO/CLOCK/SLRU/TinyLFU
//!   front-end caches.
//! * [`workload`] (`scp-workload`) — access patterns, Zipf/alias samplers,
//!   query streams, traces.
//! * [`sim`] (`scp-sim`) — rate-propagation, query-sampling and
//!   discrete-event engines plus the parallel experiment runner.
//!
//! # Quickstart
//!
//! ```
//! use secure_cache_provision::core::params::SystemParams;
//! use secure_cache_provision::core::provision::Provisioner;
//!
//! // A 1000-node cluster with 3-way replication, 1M items, 100k qps.
//! let params = SystemParams::new(1000, 3, 200, 1_000_000, 1e5)?;
//! let provisioner = Provisioner::default();
//!
//! // c = 200 is below the critical size: an adversary can overload nodes.
//! let report = provisioner.report(&params);
//! assert!(!report.is_protected);
//!
//! // Provision the recommended cache size and the attack becomes futile.
//! let safe = params.with_cache_size(report.critical_cache_size)?;
//! assert!(provisioner.report(&safe).is_protected);
//! # Ok::<(), secure_cache_provision::core::CoreError>(())
//! ```
//!
//! See `examples/` for end-to-end attack simulations and `crates/repro`
//! for the binaries that regenerate every figure of the paper.

#![warn(missing_docs)]

pub use scp_cache as cache;
pub use scp_cluster as cluster;
pub use scp_core as core;
pub use scp_sim as sim;
pub use scp_workload as workload;
