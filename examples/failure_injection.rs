//! Failure injection: node crashes during an attack. Replication keeps
//! keys reachable and the sticky selector re-pins orphaned keys; watch
//! the gain climb as survivors absorb the load.
//!
//! ```sh
//! cargo run --release --example failure_injection
//! ```

use secure_cache_provision::cluster::capacity::Capacities;
use secure_cache_provision::cluster::{Cluster, NodeId};
use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::rate_engine::run_rate_simulation_on;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m) = (100usize, 100_000u64);
    let cache = 150usize; // provisioned: c* ~ 121 at k = 1.2
                          // A wide attack (x >> c) so uncached load touches every node: node
                          // failures then visibly concentrate traffic on the survivors.
    let attack_keys = 2000u64;
    let cfg = SimConfig::builder()
        .nodes(n)
        .items(m)
        .cache_capacity(cache)
        .attack_x(attack_keys)
        .seed(99)
        .build()?;

    let mut cluster = Cluster::new(cfg.build_partitioner()?, cfg.build_selector())
        .with_capacities(Capacities::uniform(n, 1500.0)?)?;

    println!("provisioned cluster under the optimal attack, killing nodes:\n");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>10}",
        "dead nodes", "gain", "unserved", "saturated", "verdict"
    );
    for dead in [0usize, 5, 10, 25, 50, 75, 90] {
        // Fail the first `dead` nodes (recover the rest).
        for i in 0..n as u32 {
            if (i as usize) < dead {
                cluster.fail_node(NodeId::new(i))?;
            } else {
                cluster.recover_node(NodeId::new(i))?;
            }
        }
        let report = run_rate_simulation_on(&cfg, &mut cluster, cache)?;
        let gain = report.snapshot.max() / (cfg.rate / n as f64);
        println!(
            "{:>12} {:>10.3} {:>12.1} {:>12} {:>10}",
            dead,
            gain,
            report.unserved,
            cluster.saturated_nodes().len(),
            if gain > 1.0 { "BREACHED" } else { "holds" }
        );
    }

    println!(
        "\nReading: the O(n) cache bound assumes n live nodes; as failures\n\
         shrink the cluster, the same cache keeps absorbing the adversary's\n\
         head keys, but the even-share baseline degrades and survivors run\n\
         hotter — until whole replica groups die and traffic goes unserved."
    );
    Ok(())
}
