//! Capacity planning: critical cache sizes across cluster shapes, the
//! largest cluster a given cache can protect, and per-node capacity
//! head-room under the worst-case attack.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use secure_cache_provision::core::bounds::KParam;
use secure_cache_provision::core::params::SystemParams;
use secure_cache_provision::core::provision::Provisioner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fitted = Provisioner::default(); // the paper's fitted k = 1.2
    let theory = Provisioner::with_k(KParam::theory()); // conservative

    println!("Critical cache size c* by cluster shape");
    println!(
        "{:>8} {:>4} {:>14} {:>14}",
        "n", "d", "c* (fitted)", "c* (theory)"
    );
    for n in [100usize, 1000, 10_000, 100_000] {
        for d in [2usize, 3, 5] {
            println!(
                "{:>8} {:>4} {:>14} {:>14}",
                n,
                d,
                fitted.min_cache_size(n, d),
                theory.min_cache_size(n, d)
            );
        }
    }

    println!("\nLargest protectable cluster per cache budget (d = 3, fitted k)");
    println!("{:>12} {:>16}", "cache", "max nodes");
    for cache in [1_000usize, 10_000, 100_000, 1_000_000] {
        println!(
            "{:>12} {:>16}",
            cache,
            fitted.max_protectable_nodes(cache, 3)
        );
    }

    // How much per-node capacity survives the worst case at various cache
    // sizes? (1000 nodes, 100k qps: even share is 100 qps/node.)
    println!("\nPer-node capacity needed to survive the optimal attack");
    println!("(n=1000, d=3, m=1e6, R=100k qps; even share = 100 qps/node)");
    println!(
        "{:>8} {:>12} {:>18} {:>12}",
        "cache", "worst x", "needed qps/node", "protected"
    );
    for cache in [100usize, 400, 800, 1200, 1600, 2400] {
        let params = SystemParams::new(1000, 3, cache, 1_000_000, 1e5)?;
        let r = fitted.report(&params);
        println!(
            "{:>8} {:>12} {:>18.1} {:>12}",
            cache, r.worst_case_x, r.required_node_capacity, r.is_protected
        );
    }

    // The d = 1 cautionary tale: no finite cache gives the guarantee.
    println!(
        "\nWithout replication (d = 1), theory's c* is unbounded: {}",
        if theory.min_cache_size(1000, 1) == usize::MAX {
            "usize::MAX (provision replication first!)"
        } else {
            "finite?!"
        }
    );

    Ok(())
}
