//! Attack vs. defense: sweep the cache size, let the adversary play its
//! best response at every step, and find where the attack dies — then
//! confirm with latency from the discrete-event engine.
//!
//! ```sh
//! cargo run --release --example attack_simulation
//! ```

use secure_cache_provision::core::bounds::{critical_cache_size, KParam};
use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::critical::best_response_gain;
use secure_cache_provision::sim::des::{run_des, DesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, d, m) = (200usize, 3usize, 200_000u64);
    let base = SimConfig::builder()
        .nodes(n)
        .items(m)
        .pattern(AccessPattern::uniform(m)?) // replaced per step
        .seed(1337)
        .build()?;

    let c_star = critical_cache_size(n, d, &KParam::paper_fitted());
    println!("n={n}, d={d}, m={m}: paper bound says c* = {c_star}\n");
    println!("{:>8} {:>14} {:>10}", "cache", "best gain", "verdict");
    for cache in [0usize, 50, 100, 150, 200, 241, 300, 400, 800] {
        let gain = best_response_gain(&base, cache, 12, 0)?;
        println!(
            "{:>8} {:>14.3} {:>10}",
            cache,
            gain,
            if gain > 1.0 { "BREACHED" } else { "holds" }
        );
    }

    // Latency view: same attack against an M/M/1 farm with 25% head-room
    // over the even share.
    println!("\nLatency under the x = c+1 attack (service 625 qps/node):");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "cache", "p50 (ms)", "p99 (ms)", "saturated"
    );
    for cache in [50usize, 241, 800] {
        let mut sim = base.clone();
        sim.cache_capacity = cache;
        sim.pattern = AccessPattern::uniform_subset(cache as u64 + 1, m)?;
        let des = DesConfig {
            sim,
            duration: 5.0,
            service_rate: 625.0,
        };
        let r = run_des(&des)?;
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12}",
            cache,
            r.p50_latency * 1e3,
            r.p99_latency * 1e3,
            r.is_saturated()
        );
    }
    Ok(())
}
