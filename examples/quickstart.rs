//! Quickstart: size a front-end cache, attack the cluster, watch the
//! provisioned cache shrug the attack off.
//!
//! Everything here comes in through the facade prelude; the simulation
//! configs start from the builder's paper baseline and override only
//! what this example changes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use secure_cache_provision::core::adversary::{AdversaryStrategy, ReplicatedClusterAdversary};
use secure_cache_provision::prelude::*;
use secure_cache_provision::workload::AccessPattern as Pattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized cluster: 500 back-end nodes, 3-way replication,
    // 1M items, clients at 100k qps — and a 100-entry front-end cache.
    let params = SystemParams::new(500, 3, 100, 1_000_000, 1e5)?;
    let provisioner = Provisioner::default();

    let report = provisioner.report(&params);
    println!(
        "cluster: n={} d={} m={}",
        report.nodes, report.replication, report.items
    );
    println!(
        "cache:   c={} (critical size c* = {})",
        report.cache_size, report.critical_cache_size
    );
    println!("verdict: protected = {}", report.is_protected);
    println!(
        "worst case: adversary queries {} keys for a predicted gain of {:.2}x\n",
        report.worst_case_x, report.worst_case_gain
    );

    // Let the paper's optimal adversary actually attack a simulated cluster.
    let adversary = ReplicatedClusterAdversary::new();
    let plan = adversary.plan(&params)?;
    let simulate = |cache: usize, pattern: Pattern| -> Result<f64, Box<dyn std::error::Error>> {
        let cfg = SimConfig::builder()
            .nodes(params.nodes())
            .replication(params.replication())
            .cache_capacity(cache)
            .items(params.items())
            .rate(params.rate())
            .pattern(pattern)
            .seed(2013)
            .build()?;
        Ok(run_rate_simulation(&cfg)?.gain().value())
    };

    let gain = simulate(params.cache_size(), plan.pattern.clone())?;
    println!(
        "under-provisioned cache: simulated gain {gain:.2}x (attack {})",
        if gain > 1.0 {
            "EFFECTIVE"
        } else {
            "ineffective"
        }
    );

    // Provision the recommended cache and re-run the same playbook.
    let safe = params.with_cache_size(report.critical_cache_size)?;
    let replanned = adversary.plan(&safe)?;
    let gain = simulate(safe.cache_size(), replanned.pattern.clone())?;
    println!(
        "provisioned cache (c = {}): adversary's best is {} keys, simulated gain {gain:.3}x (attack {})",
        safe.cache_size(),
        replanned.x,
        if gain > 1.0 { "EFFECTIVE" } else { "ineffective" }
    );

    Ok(())
}
