//! Per-run observability: repeat an attack simulation under an adaptive
//! stopping rule and inspect the journal — one record per repetition with
//! the derived seed, duration and load shape — then replay the worst run
//! bit-for-bit from its recorded seed.
//!
//! ```sh
//! cargo run --release --example run_journal
//! ```

use secure_cache_provision::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m, c) = (200usize, 200_000u64, 100usize);
    // Builder defaults give the optimal x = c + 1 attack automatically.
    let cfg = SimConfig::builder()
        .nodes(n)
        .items(m)
        .cache_capacity(c)
        .seed(42)
        .build()?;

    // Up to 64 repetitions, but stop as soon as the 95% CI half-width of
    // the gain drops below 0.05 (never before 8 runs).
    let rule = StopRule::adaptive(8, 64, 0.05);
    let out = repeat_rate_simulation_journaled(&cfg, &rule, 0)?;
    let journal = &out.journal;

    println!(
        "ran {} repetitions ({}), gain mean {:.3} +/- {:.3} (CI95)",
        journal.len(),
        if journal.stopping.stopped_early {
            "stopped early: CI target met"
        } else {
            "hit the run ceiling"
        },
        journal.gain_summary.mean,
        journal.stopping.ci_half_width,
    );

    println!("\n{:>4} {:>20} {:>10} {:>10}", "run", "seed", "gain", "ms");
    for r in &journal.records {
        println!(
            "{:>4} {:>20} {:>10.3} {:>10.3}",
            r.run,
            r.seed,
            r.gain,
            r.duration_secs * 1e3
        );
    }

    // The journal makes every run replayable: re-run the worst one.
    let worst = journal
        .records
        .iter()
        .max_by(|a, b| a.gain.total_cmp(&b.gain))
        .expect("journal is never empty");
    let mut replay = cfg.clone();
    replay.seed = worst.seed;
    let report = run_rate_simulation(&replay)?;
    println!(
        "\nworst run {} replayed from seed {}: gain {:.3} (journal said {:.3})",
        worst.run,
        worst.seed,
        report.gain().value(),
        worst.gain
    );
    assert!((report.gain().value() - worst.gain).abs() < 1e-12);

    // The whole journal serializes to self-describing JSON.
    let json = journal.to_json().to_pretty_string();
    println!("\njournal JSON is {} bytes; head:", json.len());
    for line in json.lines().take(12) {
        println!("  {line}");
    }
    Ok(())
}
