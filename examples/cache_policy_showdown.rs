//! Cache-policy showdown: how close do real replacement policies come to
//! the paper's perfect-popularity oracle, under organic (Zipf) and
//! adversarial traffic?
//!
//! ```sh
//! cargo run --release --example cache_policy_showdown
//! ```

use secure_cache_provision::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m, cache, queries) = (100usize, 50_000u64, 250usize, 400_000u64);
    let patterns = [
        ("zipf(1.01)", AccessPattern::zipf(1.01, m)?),
        ("zipf(0.8)", AccessPattern::zipf(0.8, m)?),
        (
            "adversarial",
            AccessPattern::uniform_subset(cache as u64 + 1, m)?,
        ),
    ];

    println!("n={n}, m={m}, c={cache}, {queries} queries per cell\n");
    println!(
        "{:>10} | {:>22} | {:>22} | {:>22}",
        "policy", "zipf(1.01) hit/gain", "zipf(0.8) hit/gain", "adversarial hit/gain"
    );
    println!("{}", "-".repeat(88));
    for kind in [
        CacheKind::Perfect,
        CacheKind::Lfu,
        CacheKind::Arc,
        CacheKind::TinyLfu,
        CacheKind::Slru,
        CacheKind::Lru,
        CacheKind::Clock,
        CacheKind::Fifo,
    ] {
        let mut cells = Vec::new();
        for (_, pattern) in &patterns {
            let cfg = SimConfig::builder()
                .nodes(n)
                .cache_kind(kind)
                .cache_capacity(cache)
                .items(m)
                .pattern(pattern.clone())
                .seed(7)
                .build()?;
            let r = run_query_simulation(&cfg, queries)?;
            let hit = r.cache_stats.map(|s| s.hit_rate()).unwrap_or_default();
            cells.push(format!(
                "{:>9.1}% / {:>6.3}x",
                hit * 100.0,
                r.gain().value()
            ));
        }
        println!(
            "{:>10} | {:>22} | {:>22} | {:>22}",
            kind.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!(
        "\nReading: under Zipf, frequency-aware policies (LFU/TinyLFU) track the\n\
         oracle; under the adversarial equal-rate pattern no policy can beat the\n\
         c/x hit ceiling — only *sizing* the cache (c >= c*) defends the cluster."
    );
    Ok(())
}
