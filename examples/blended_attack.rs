//! A stealthy attack ramping up inside organic traffic, watched by the
//! online detector.
//!
//! Interval by interval, an adversarial uniform-subset flood grows from
//! 0% to 80% of the traffic mix on top of a Zipf(1.01) base. The detector
//! consumes each interval's load report and raises the alarm once the
//! hotspot signature persists.
//!
//! ```sh
//! cargo run --release --example blended_attack
//! ```

use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::detector::{AttackDetector, DetectorConfig};
use secure_cache_provision::workload::mixture::MixturePattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m, cache) = (200usize, 200_000u64, 60usize); // c below c* ~ 241
    let organic = AccessPattern::zipf(1.01, m)?;
    let flood = AccessPattern::uniform_subset(cache as u64 + 1, m)?;

    let mut detector = AttackDetector::new(DetectorConfig {
        gain_threshold: 1.5,
        ..DetectorConfig::default()
    });

    println!("interval  attack%   gain   hit%   strikes  status");
    println!("{}", "-".repeat(56));
    let mut alarm_interval = None;
    for interval in 0..12u64 {
        // Attack share ramps 0, 0, 10%, 20%, ... up to 80%.
        let attack_share = ((interval.saturating_sub(1)) as f64 / 10.0).min(0.8);
        let pattern = if attack_share == 0.0 {
            organic.clone()
        } else {
            MixturePattern::new(vec![
                (1.0 - attack_share, organic.clone()),
                (attack_share, flood.clone()),
            ])?
            .to_explicit()?
        };
        let cfg = SimConfig::builder()
            .nodes(n)
            .items(m)
            .cache_capacity(cache)
            .pattern(pattern)
            .seed(0x5EA1 ^ interval)
            .build()?;
        let report = run_rate_simulation(&cfg)?;
        let state = detector.observe(&report);
        if state.alarmed && alarm_interval.is_none() {
            alarm_interval = Some(interval);
        }
        println!(
            "{:>8}  {:>6.0}%  {:>5.2}  {:>5.1}  {:>7}  {}",
            interval,
            attack_share * 100.0,
            report.gain().value(),
            report.cache_fraction() * 100.0,
            state.strikes,
            if state.alarmed { "ALARM" } else { "ok" }
        );
    }

    match alarm_interval {
        Some(i) => println!("\nattack detected at interval {i} (ramp began at interval 2)"),
        None => println!("\nattack was never detected — raise the cache or lower thresholds"),
    }
    Ok(())
}
