//! Reproducibility guarantees: every engine is a pure function of its
//! seed, and parallel repetition never leaks thread scheduling.

use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::des::{run_des, DesConfig};
use secure_cache_provision::sim::runner::{repeat, repeat_rate_simulation};
use secure_cache_provision::workload::stream::QueryStream;

fn config(seed: u64) -> SimConfig {
    SimConfig::builder()
        .nodes(60)
        .cache_capacity(15)
        .items(5_000)
        .rate(1e4)
        .pattern(AccessPattern::zipf(1.01, 5_000).unwrap())
        .partitioner(PartitionerKind::Ring)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

#[test]
fn rate_engine_is_seed_deterministic() {
    assert_eq!(
        run_rate_simulation(&config(9)).unwrap(),
        run_rate_simulation(&config(9)).unwrap()
    );
    assert_ne!(
        run_rate_simulation(&config(9)).unwrap().snapshot,
        run_rate_simulation(&config(10)).unwrap().snapshot
    );
}

#[test]
fn query_engine_is_seed_deterministic() {
    let mut cfg = config(11);
    cfg.cache_kind = CacheKind::TinyLfu;
    assert_eq!(
        run_query_simulation(&cfg, 30_000).unwrap(),
        run_query_simulation(&cfg, 30_000).unwrap()
    );
}

#[test]
fn des_engine_is_seed_deterministic() {
    let des = DesConfig {
        sim: config(12),
        duration: 3.0,
        service_rate: 400.0,
    };
    assert_eq!(run_des(&des).unwrap(), run_des(&des).unwrap());
}

#[test]
fn parallel_repetitions_are_schedule_independent() {
    let cfg = config(13);
    let (one_thread, one_agg) = repeat_rate_simulation(&cfg, 10, 1).unwrap();
    let (eight_threads, eight_agg) = repeat_rate_simulation(&cfg, 10, 8).unwrap();
    assert_eq!(one_thread, eight_threads);
    // The gain aggregate is a pure function of the reports, so it must
    // also be bit-identical across thread counts.
    assert_eq!(one_agg, eight_agg);
}

#[test]
fn generic_repeat_is_schedule_independent() {
    // The raw fan-out primitive, not just the rate-simulation wrapper:
    // per-run values must land at their run index regardless of workers.
    let job = |i: usize| (i, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let serial = repeat(23, 1, job);
    let parallel = repeat(23, 8, job);
    assert_eq!(serial, parallel);
    assert!(serial.iter().enumerate().all(|(i, &(j, _))| i == j));
}

#[test]
fn adaptive_stopping_is_schedule_independent() {
    // The CI-driven stop point is decided on run-order prefixes, so the
    // kept reports, the journal and the stopping metadata must all be
    // independent of worker count.
    let cfg = config(16);
    let rule = StopRule::adaptive(4, 24, 0.05);
    let a = repeat_rate_simulation_journaled(&cfg, &rule, 1).unwrap();
    let b = repeat_rate_simulation_journaled(&cfg, &rule, 8).unwrap();
    assert_eq!(a.reports, b.reports);
    assert_eq!(a.journal.stopping, b.journal.stopping);
    // Journal records carry wall-clock durations, which are the one field
    // allowed to differ across schedules; everything else must match.
    assert_eq!(a.journal.len(), b.journal.len());
    for (ra, rb) in a.journal.records.iter().zip(&b.journal.records) {
        assert_eq!(ra.run, rb.run);
        assert_eq!(ra.seed, rb.seed);
        assert_eq!(ra.max_load, rb.max_load);
        assert_eq!(ra.mean_load, rb.mean_load);
        assert_eq!(ra.cache_fraction, rb.cache_fraction);
        assert_eq!(ra.gain, rb.gain);
    }
}

#[test]
fn zero_ci_target_degenerates_to_fixed_runs() {
    // ci_target = 0 must reproduce the historical fixed-count behavior
    // exactly: same reports as plain repetition, no early stop.
    let cfg = config(17);
    let rule = StopRule {
        min_runs: 4,
        max_runs: 12,
        ci_target: 0.0,
    };
    let adaptive_off = repeat_rate_simulation_journaled(&cfg, &rule, 4).unwrap();
    let (fixed, _) = repeat_rate_simulation(&cfg, 12, 4).unwrap();
    assert_eq!(adaptive_off.reports, fixed);
    assert_eq!(adaptive_off.journal.len(), 12);
    assert!(!adaptive_off.journal.stopping.stopped_early);
}

#[test]
fn workload_streams_are_seed_deterministic() {
    let p = AccessPattern::zipf(1.2, 100_000).unwrap();
    let a: Vec<u64> = QueryStream::scattered(&p, 42).unwrap().take(200).collect();
    let b: Vec<u64> = QueryStream::scattered(&p, 42).unwrap().take(200).collect();
    assert_eq!(a, b);
}

#[test]
fn engines_do_not_share_random_state() {
    // Running the rate engine must not perturb a subsequent query-engine
    // run with the same seed (no global RNG anywhere).
    let cfg = config(14);
    let before = run_query_simulation(&cfg, 10_000).unwrap();
    let _ = run_rate_simulation(&cfg).unwrap();
    let _ = run_rate_simulation(&config(15)).unwrap();
    let after = run_query_simulation(&cfg, 10_000).unwrap();
    assert_eq!(before, after);
}
