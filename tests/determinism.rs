//! Reproducibility guarantees: every engine is a pure function of its
//! seed, and parallel repetition never leaks thread scheduling.

use secure_cache_provision::sim::config::{CacheKind, PartitionerKind, SelectorKind, SimConfig};
use secure_cache_provision::sim::des::{run_des, DesConfig};
use secure_cache_provision::sim::query_engine::run_query_simulation;
use secure_cache_provision::sim::rate_engine::run_rate_simulation;
use secure_cache_provision::sim::runner::repeat_rate_simulation;
use secure_cache_provision::workload::stream::QueryStream;
use secure_cache_provision::workload::AccessPattern;

fn config(seed: u64) -> SimConfig {
    SimConfig {
        nodes: 60,
        replication: 3,
        cache_kind: CacheKind::Perfect,
        cache_capacity: 15,
        items: 5_000,
        rate: 1e4,
        pattern: AccessPattern::zipf(1.01, 5_000).unwrap(),
        partitioner: PartitionerKind::Ring,
        selector: SelectorKind::LeastLoaded,
        seed,
    }
}

#[test]
fn rate_engine_is_seed_deterministic() {
    assert_eq!(
        run_rate_simulation(&config(9)).unwrap(),
        run_rate_simulation(&config(9)).unwrap()
    );
    assert_ne!(
        run_rate_simulation(&config(9)).unwrap().snapshot,
        run_rate_simulation(&config(10)).unwrap().snapshot
    );
}

#[test]
fn query_engine_is_seed_deterministic() {
    let mut cfg = config(11);
    cfg.cache_kind = CacheKind::TinyLfu;
    assert_eq!(
        run_query_simulation(&cfg, 30_000).unwrap(),
        run_query_simulation(&cfg, 30_000).unwrap()
    );
}

#[test]
fn des_engine_is_seed_deterministic() {
    let des = DesConfig {
        sim: config(12),
        duration: 3.0,
        service_rate: 400.0,
    };
    assert_eq!(run_des(&des).unwrap(), run_des(&des).unwrap());
}

#[test]
fn parallel_repetitions_are_schedule_independent() {
    let cfg = config(13);
    let (one_thread, _) = repeat_rate_simulation(&cfg, 10, 1).unwrap();
    let (eight_threads, _) = repeat_rate_simulation(&cfg, 10, 8).unwrap();
    assert_eq!(one_thread, eight_threads);
}

#[test]
fn workload_streams_are_seed_deterministic() {
    let p = AccessPattern::zipf(1.2, 100_000).unwrap();
    let a: Vec<u64> = QueryStream::scattered(&p, 42).unwrap().take(200).collect();
    let b: Vec<u64> = QueryStream::scattered(&p, 42).unwrap().take(200).collect();
    assert_eq!(a, b);
}

#[test]
fn engines_do_not_share_random_state() {
    // Running the rate engine must not perturb a subsequent query-engine
    // run with the same seed (no global RNG anywhere).
    let cfg = config(14);
    let before = run_query_simulation(&cfg, 10_000).unwrap();
    let _ = run_rate_simulation(&cfg).unwrap();
    let _ = run_rate_simulation(&config(15)).unwrap();
    let after = run_query_simulation(&cfg, 10_000).unwrap();
    assert_eq!(before, after);
}
