//! The Eq. (10) bound against simulation, across a parameter grid.

use secure_cache_provision::core::bounds::{attack_gain_bound, critical_cache_size, KParam};
use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::critical::find_critical_cache_size;
use secure_cache_provision::sim::runner::repeat_rate_simulation;

fn sim_max_gain(n: usize, d: usize, c: usize, x: u64, m: u64, runs: usize) -> f64 {
    let cfg = SimConfig::builder()
        .nodes(n)
        .replication(d)
        .cache_capacity(c)
        .items(m)
        .attack_x(x)
        .seed(0xBEEF ^ (n as u64) ^ ((d as u64) << 8) ^ ((c as u64) << 16) ^ x)
        .build()
        .unwrap();
    let (_, agg) = repeat_rate_simulation(&cfg, runs, 0).unwrap();
    agg.max_gain()
}

#[test]
fn theory_bound_dominates_simulation_across_grid() {
    let m = 50_000u64;
    let k = KParam::theory();
    for (n, d) in [(50usize, 2usize), (100, 3), (200, 4)] {
        for c in [10usize, 50, 200] {
            for x in [c as u64 + 1, 2_000, m] {
                if x <= c as u64 {
                    continue;
                }
                let params = SystemParams::new(n, d, c, m, 1e5).unwrap();
                let bound = attack_gain_bound(&params, x, &k).value();
                let sim = sim_max_gain(n, d, c, x, m, 8);
                assert!(
                    bound >= sim - 0.1,
                    "bound {bound} < sim {sim} at n={n} d={d} c={c} x={x}"
                );
            }
        }
    }
}

#[test]
fn bound_is_tight_at_small_x() {
    // At x = c + 1 the uncached load is a single key on one node; the
    // simulated gain is exactly n/(c+1) and the bound should be within a
    // small constant factor of it.
    let (n, d, c, m) = (100usize, 3usize, 30usize, 50_000u64);
    let sim = sim_max_gain(n, d, c, (c + 1) as u64, m, 4);
    assert!((sim - n as f64 / (c as f64 + 1.0)).abs() < 1e-6);
    let params = SystemParams::new(n, d, c, m, 1e5).unwrap();
    let bound = attack_gain_bound(&params, (c + 1) as u64, &KParam::theory()).value();
    assert!(bound / sim < 2.5, "bound {bound} too loose vs sim {sim}");
}

#[test]
fn empirical_critical_size_within_theory_bound() {
    // The theoretical c* upper-bounds the empirical critical point, and
    // should not be off by more than a small factor (the paper's "our
    // bound is tight" claim, Fig. 5).
    let base = SimConfig::builder()
        .nodes(100)
        .items(50_000)
        .pattern(AccessPattern::uniform(50_000).unwrap())
        .seed(77)
        .build()
        .unwrap();
    let cp = find_critical_cache_size(&base, 6, 0).unwrap();
    let theory = critical_cache_size(100, 3, &KParam::theory());
    assert!(
        cp.cache_size <= theory,
        "empirical critical {} exceeds theory c* {}",
        cp.cache_size,
        theory
    );
    assert!(
        (cp.cache_size as f64) >= theory as f64 * 0.15,
        "empirical critical {} suspiciously far below theory {}",
        cp.cache_size,
        theory
    );
}

#[test]
fn larger_replication_weakens_the_attack() {
    // Same cache, same adversary, growing d: the max load should drop
    // (more choices = flatter allocation).
    let m = 50_000u64;
    let c = 50usize;
    let x = 5_000u64;
    let mut last = f64::INFINITY;
    for d in [1usize, 2, 4] {
        let gain = sim_max_gain(200, d, c, x, m, 8);
        assert!(
            gain <= last + 0.05,
            "gain {gain} at d={d} above previous {last}"
        );
        last = gain;
    }
}

#[test]
fn gain_scale_invariance_in_rate() {
    // Normalized gain must not depend on the absolute client rate.
    let mk = |rate: f64| {
        SimConfig::builder()
            .nodes(100)
            .cache_capacity(20)
            .items(10_000)
            .rate(rate)
            .seed(5)
            .build()
            .unwrap()
    };
    let lo = run_rate_simulation(&mk(1e3)).unwrap();
    let hi = run_rate_simulation(&mk(1e7)).unwrap();
    assert!((lo.gain().value() - hi.gain().value()).abs() < 1e-9);
}
