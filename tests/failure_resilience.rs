//! Failure injection across the engines: replication keeps keys served,
//! sticky selectors re-pin, crash losses are accounted, and the detector
//! distinguishes attack hotspots from failure-induced imbalance.

use secure_cache_provision::cluster::{Cluster, NodeId};
use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::des::{run_des_with_events, DesConfig, FailAction, NodeEvent};
use secure_cache_provision::sim::detector::{AttackDetector, DetectorConfig};
use secure_cache_provision::sim::rate_engine::run_rate_simulation_on;

fn config(n: usize, c: usize, x: u64, seed: u64) -> SimConfig {
    SimConfig::builder()
        .nodes(n)
        .cache_capacity(c)
        .items(50_000)
        .attack_x(x)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

#[test]
fn replication_masks_failures_up_to_d_minus_one_per_group() {
    // With d = 3, any two failures cannot unserve a key (some replica of
    // every group survives when the two dead nodes are fixed).
    let cfg = config(60, 0, 5_000, 1);
    let mut cluster = Cluster::new(cfg.build_partitioner().unwrap(), cfg.build_selector());
    cluster.fail_node(NodeId::new(7)).unwrap();
    cluster.fail_node(NodeId::new(21)).unwrap();
    let report = run_rate_simulation_on(&cfg, &mut cluster, 0).unwrap();
    assert_eq!(report.unserved, 0.0, "two failures must never unserve");
    assert_eq!(report.snapshot.loads()[7], 0.0);
    assert_eq!(report.snapshot.loads()[21], 0.0);
    assert!(report.is_conserved(1e-9));
}

#[test]
fn mass_failure_eventually_unserves_whole_groups() {
    let cfg = config(30, 0, 5_000, 2);
    let mut cluster = Cluster::new(cfg.build_partitioner().unwrap(), cfg.build_selector());
    for i in 0..27u32 {
        cluster.fail_node(NodeId::new(i)).unwrap();
    }
    let report = run_rate_simulation_on(&cfg, &mut cluster, 0).unwrap();
    assert!(
        report.unserved > 0.0,
        "with 3 survivors most replica groups are fully dead"
    );
    assert!(report.is_conserved(1e-9));
}

#[test]
fn survivors_absorb_failed_nodes_load() {
    let cfg = config(50, 0, 10_000, 3);
    let healthy = run_rate_simulation(&cfg).unwrap();
    let mut cluster = Cluster::new(cfg.build_partitioner().unwrap(), cfg.build_selector());
    for i in 0..10u32 {
        cluster.fail_node(NodeId::new(i)).unwrap();
    }
    let degraded = run_rate_simulation_on(&cfg, &mut cluster, 0).unwrap();
    assert!(
        degraded.gain().value() > healthy.gain().value(),
        "failures must raise the survivors' max load: {} vs {}",
        degraded.gain().value(),
        healthy.gain().value()
    );
}

#[test]
fn des_timeline_crash_spike_then_recovery() {
    // Crash a third of the nodes at t=5 and bring them back at t=15.
    let cfg = DesConfig {
        sim: config(20, 0, 2_000, 4),
        duration: 25.0,
        service_rate: 2.0 * 1e5 / 20.0,
    };
    let mut events = Vec::new();
    for i in 0..6u32 {
        events.push(NodeEvent {
            at: 5.0,
            node: NodeId::new(i),
            action: FailAction::Fail,
        });
        events.push(NodeEvent {
            at: 15.0,
            node: NodeId::new(i),
            action: FailAction::Recover,
        });
    }
    let r = run_des_with_events(&cfg, &events).unwrap();
    assert!(r.load.is_conserved(1e-9));
    assert!(r.unfinished > 0, "the crash should strand queued work");
    // Recovered nodes served again: all 20 nodes carry load.
    assert!(r.load.snapshot.loads().iter().all(|&l| l > 0.0));
}

#[test]
fn detector_sees_failure_imbalance_differently_from_attack() {
    // A uniform workload with failures produces moderate gains (survivors
    // share evenly); the optimal attack produces an extreme hotspot. The
    // detector, tuned to hotspot signatures, fires on the attack but
    // tolerates the failure-degraded-but-balanced cluster.
    let mut det = AttackDetector::new(DetectorConfig::default());

    let failure_cfg = config(50, 0, 50_000, 5);
    let mut degraded = Cluster::new(
        failure_cfg.build_partitioner().unwrap(),
        failure_cfg.build_selector(),
    );
    for i in 0..5u32 {
        degraded.fail_node(NodeId::new(i)).unwrap();
    }
    for _ in 0..5 {
        let r = run_rate_simulation_on(&failure_cfg, &mut degraded, 0).unwrap();
        let s = det.observe(&r);
        assert!(!s.alarmed, "failure imbalance misread as attack: {s:?}");
    }

    det.reset();
    let attack_cfg = config(50, 25, 26, 6);
    for i in 0..5u64 {
        let mut cfg = attack_cfg.clone();
        cfg.seed ^= i;
        let r = run_rate_simulation(&cfg).unwrap();
        if det.observe(&r).alarmed {
            return; // detected
        }
    }
    panic!("optimal attack went undetected: {:?}", det.state());
}
