//! Replication vs. the Fan et al. (SoCC'11) no-replication baseline.
//!
//! The paper's core differentiator: with `d = 1` the adversary picks an
//! interior-optimal subset and *always* wins; with `d >= 2` a finite O(n)
//! cache flips the game.

use secure_cache_provision::core::adversary::{
    AdversaryStrategy, ReplicatedClusterAdversary, SmallCacheAdversary,
};
use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::runner::repeat_rate_simulation;

const NODES: usize = 200;
const ITEMS: u64 = 200_000;
const RATE: f64 = 1e5;

fn sim_gain(d: usize, cache: usize, x: u64, runs: usize) -> f64 {
    let cfg = SimConfig::builder()
        .nodes(NODES)
        .replication(d)
        .cache_capacity(cache)
        .items(ITEMS)
        .rate(RATE)
        .attack_x(x)
        .seed(0xFA4 ^ ((d as u64) << 32) ^ ((cache as u64) << 8) ^ x)
        .build()
        .unwrap();
    let (_, agg) = repeat_rate_simulation(&cfg, runs, 0).unwrap();
    agg.max_gain()
}

#[test]
fn fan_adversary_picks_interior_x_that_beats_the_endpoints() {
    // At d = 1 the interior optimum must beat both x = c+1 and x = m in
    // simulation, not just in the bound.
    let cache = 100usize;
    let params = SystemParams::new(NODES, 1, cache, ITEMS, RATE).unwrap();
    let plan = SmallCacheAdversary::new().plan(&params).unwrap();
    assert!(plan.x > cache as u64 + 1 && plan.x < ITEMS);

    let interior = sim_gain(1, cache, plan.x, 10);
    let small = sim_gain(1, cache, cache as u64 + 1, 10);
    let whole = sim_gain(1, cache, ITEMS, 10);
    assert!(
        interior > small && interior > whole,
        "interior {interior} should beat endpoints {small} / {whole}"
    );
    assert!(interior > 1.0, "d=1 attack must be effective");
}

#[test]
fn replication_defeats_the_same_budget_that_fails_at_d_one() {
    // Cache sized for d = 3 (c* = 241 at fitted k): protects the
    // replicated cluster; the d = 1 cluster still falls to the Fan
    // adversary with the same cache.
    let cache = 300usize;

    let params_d3 = SystemParams::new(NODES, 3, cache, ITEMS, RATE).unwrap();
    let plan_d3 = ReplicatedClusterAdversary::new().plan(&params_d3).unwrap();
    let gain_d3 = sim_gain(3, cache, plan_d3.x, 10);
    assert!(gain_d3 <= 1.0, "d=3 should hold at c=300, got {gain_d3}");

    let params_d1 = SystemParams::new(NODES, 1, cache, ITEMS, RATE).unwrap();
    let plan_d1 = SmallCacheAdversary::new().plan(&params_d1).unwrap();
    let gain_d1 = sim_gain(1, cache, plan_d1.x, 10);
    assert!(
        gain_d1 > 1.0,
        "d=1 should still be breached at c=300, got {gain_d1}"
    );
}

#[test]
fn fan_strategy_is_suboptimal_against_replicated_clusters() {
    // Using the d=1 playbook against a d=3 cluster with a small cache is
    // no better than the paper's optimal x = c + 1.
    let cache = 40usize; // below c* so the optimal play is x = c+1
    let params = SystemParams::new(NODES, 3, cache, ITEMS, RATE).unwrap();
    let fan_plan = SmallCacheAdversary::new().plan(&params).unwrap();
    let fan_gain = sim_gain(3, cache, fan_plan.x, 10);
    let optimal_gain = sim_gain(3, cache, cache as u64 + 1, 10);
    assert!(
        optimal_gain >= fan_gain - 0.05,
        "optimal {optimal_gain} should not trail fan {fan_gain}"
    );
}

#[test]
fn single_choice_max_load_grows_with_subset_size_but_d_choice_does_not() {
    // The structural difference behind the two papers: the d=1 deviation
    // term grows as sqrt(x), the d>=2 term is a constant. Measure the
    // *excess* keys-above-average on the fullest node with no cache.
    let excess = |d: usize, x: u64| {
        let gain = sim_gain(d, 0, x, 8);
        // keys on fullest node = gain * x / n; average = x / n.
        (gain - 1.0) * x as f64 / NODES as f64
    };
    let d1_small = excess(1, 2_000);
    let d1_large = excess(1, 50_000);
    assert!(
        d1_large > d1_small * 2.0,
        "d=1 excess should grow: {d1_small} -> {d1_large}"
    );
    let d3_small = excess(3, 2_000);
    let d3_large = excess(3, 50_000);
    assert!(
        d3_large < d3_small * 3.0 + 3.0,
        "d=3 excess should stay ~constant: {d3_small} -> {d3_large}"
    );
    assert!(d3_large < d1_large, "d-choice must beat single choice");
}
