//! The incremental sweep engine against the per-point rate engine.
//!
//! The sweep promises **bit-identical** reports (exact `f64` equality,
//! not tolerance-equal): for equal-rate patterns every accumulator in the
//! per-point engine is fed the same addend repeatedly, so its final value
//! is a pure function of the addend count and can be reconstructed from
//! integer counts (see `scp_sim::sweep` module docs for the summation
//! order argument). These tests pin that promise across selectors,
//! partitioners, seeds and the grid boundaries the paper's artifacts
//! exercise — `x = c + 1` and `c = 0` included.

use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::sweep::{repeat_sweep_journaled, RunSweep, SweepPoint};

fn base(
    selector: SelectorKind,
    partitioner: PartitionerKind,
    cache: usize,
    seed: u64,
) -> SimConfig {
    SimConfig::builder()
        .nodes(60)
        .replication(3)
        .items(3_000)
        .rate(1e4)
        .cache_capacity(cache)
        .partitioner(partitioner)
        .selector(selector)
        .seed(seed)
        .build()
        .unwrap()
}

fn per_point(cfg: &SimConfig, c: usize, x: u64) -> LoadReport {
    let point = cfg
        .to_builder()
        .cache_capacity(c)
        .attack_x(x)
        .build()
        .unwrap();
    run_rate_simulation(&point).unwrap()
}

#[test]
fn sweep_is_bit_identical_across_selectors_partitioners_and_seeds() {
    let selectors = [
        SelectorKind::LeastLoaded,
        SelectorKind::Random,
        SelectorKind::RoundRobin,
        SelectorKind::PerQueryLeastLoaded,
    ];
    let partitioners = [
        PartitionerKind::Hash,
        PartitionerKind::Rendezvous,
        PartitionerKind::Ring,
    ];
    for &selector in &selectors {
        for &partitioner in &partitioners {
            for seed in [0u64, 7, 0xDEAD_BEEF] {
                for cache in [0usize, 25] {
                    let cfg = base(selector, partitioner, cache, seed);
                    let mut sweep = RunSweep::new(&cfg, cfg.items).unwrap();
                    // x = c + 1 boundary, interior points, and x = m.
                    let grid: Vec<u64> = [cache as u64 + 1, 40, 500, 3_000]
                        .into_iter()
                        .filter(|&x| x > cache as u64)
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    let reports = sweep.evaluate(cache, &grid).unwrap();
                    for (&x, report) in grid.iter().zip(&reports) {
                        assert_eq!(
                            report,
                            &per_point(&cfg, cache, x),
                            "mismatch at {selector:?}/{partitioner:?}/seed={seed}/c={cache}/x={x}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn one_walk_covers_multiple_cache_sizes_bit_identically() {
    // The same RunSweep evaluated at several cache sizes (as the
    // critical-size bisection does) keeps matching the per-point engine,
    // including the fully-cached x <= c degenerate corner.
    let cfg = base(SelectorKind::LeastLoaded, PartitionerKind::Hash, 10, 42);
    let mut sweep = RunSweep::new(&cfg, cfg.items).unwrap();
    for c in [0usize, 1, 10, 100, 1_000] {
        let grid = [c as u64 + 1, 2_000, 3_000];
        let reports = sweep.evaluate(c, &grid).unwrap();
        for (&x, report) in grid.iter().zip(&reports) {
            assert_eq!(report, &per_point(&cfg, c, x), "c={c} x={x}");
        }
    }
}

#[test]
fn journaled_sweep_is_identical_at_one_and_eight_threads() {
    let cfg = base(SelectorKind::LeastLoaded, PartitionerKind::Hash, 20, 9);
    let points = [
        SweepPoint { cache: 20, x: 21 },
        SweepPoint {
            cache: 20,
            x: 3_000,
        },
        SweepPoint { cache: 0, x: 1 },
        SweepPoint { cache: 0, x: 3_000 },
    ];
    let rule = StopRule::adaptive(4, 12, 0.3);
    let a = repeat_sweep_journaled(&cfg, &points, &rule, 1).unwrap();
    let b = repeat_sweep_journaled(&cfg, &points, &rule, 8).unwrap();
    assert_eq!(a.len(), b.len());
    for (left, right) in a.iter().zip(&b) {
        assert_eq!(left.point, right.point);
        assert_eq!(left.journaled.reports, right.journaled.reports);
        assert_eq!(left.journaled.aggregate, right.journaled.aggregate);
        assert_eq!(
            left.journaled.journal.stopping,
            right.journaled.journal.stopping
        );
    }
}

#[test]
fn journal_seeds_replay_through_the_per_point_engine() {
    // Every journal record's seed must reproduce that run's report when
    // fed back through run_rate_simulation — the observability contract
    // the per-point path has always offered.
    let cfg = base(SelectorKind::LeastLoaded, PartitionerKind::Hash, 15, 77);
    let points = [
        SweepPoint { cache: 15, x: 16 },
        SweepPoint {
            cache: 15,
            x: 3_000,
        },
    ];
    let swept = repeat_sweep_journaled(&cfg, &points, &StopRule::fixed(3), 0).unwrap();
    for run in &swept {
        let point_cfg = cfg
            .to_builder()
            .cache_capacity(run.point.cache)
            .attack_x(run.point.x)
            .build()
            .unwrap();
        for (record, report) in run
            .journaled
            .journal
            .records
            .iter()
            .zip(&run.journaled.reports)
        {
            let replayed = run_rate_simulation(&point_cfg.for_run(record.run as u64)).unwrap();
            assert_eq!(&replayed, report, "record seed failed to replay");
            assert_eq!(record.seed, point_cfg.for_run(record.run as u64).seed);
        }
    }
}
