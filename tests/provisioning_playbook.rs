//! The operator's playbook end-to-end: SLO-driven cache sizing and
//! replication planning, validated against the simulated cluster.

use secure_cache_provision::core::bounds::KParam;
use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::runner::repeat_rate_simulation;

const NODES: usize = 100;
const ITEMS: u64 = 100_000;
const RATE: f64 = 1e5;

fn simulated_gain(cache: usize, x: u64, seed: u64) -> f64 {
    let cfg = SimConfig::builder()
        .nodes(NODES)
        .cache_capacity(cache)
        .items(ITEMS)
        .rate(RATE)
        .attack_x(x)
        .seed(seed)
        .build()
        .unwrap();
    let (_, agg) = repeat_rate_simulation(&cfg, 10, 0).unwrap();
    agg.max_gain()
}

#[test]
fn slo_sized_cache_meets_its_target_in_simulation() {
    // Operator accepts hotspots up to 3x the fair share; the provisioner
    // hands back a much smaller cache than c*, and the simulated optimal
    // attack indeed stays under 3x.
    let prov = Provisioner::with_k(KParam::theory());
    let c_star = prov.min_cache_size(NODES, 3);
    let c_slo = prov.cache_for_target_gain(NODES, 3, 3.0).unwrap();
    assert!(
        c_slo < c_star,
        "SLO cache {c_slo} should undercut c* {c_star}"
    );

    // Below c*, the adversary's best play is x = c + 1.
    let gain = simulated_gain(c_slo, c_slo as u64 + 1, 1);
    assert!(
        gain <= 3.0 + 1e-9,
        "SLO breached: gain {gain} with c = {c_slo}"
    );
    // The budget is not wildly conservative: half the cache misses it.
    let gain = simulated_gain(c_slo / 2, (c_slo / 2) as u64 + 1, 2);
    assert!(gain > 3.0, "half the SLO cache should breach, got {gain}");
}

#[test]
fn replication_planning_matches_simulation() {
    // Operator has a fixed cache budget; the provisioner names the
    // replication factor that makes it sufficient.
    let prov = Provisioner::with_k(KParam::theory());
    let budget = prov.min_cache_size(NODES, 4) + 10; // enough for d = 4
    let d = prov.min_replication(NODES, budget).expect("a d must exist");
    assert!(d <= 4);

    // Simulate at the recommended d: both candidate plays fail.
    let cfg = SimConfig::builder()
        .nodes(NODES)
        .replication(d)
        .cache_capacity(budget)
        .items(ITEMS)
        .rate(RATE)
        .attack_x(budget as u64 + 1)
        .seed(3)
        .build()
        .unwrap();
    let (_, small_x) = repeat_rate_simulation(&cfg, 10, 0).unwrap();
    let mut whole = cfg.clone();
    whole.pattern = AccessPattern::uniform_subset(ITEMS, ITEMS).unwrap();
    let (_, all_keys) = repeat_rate_simulation(&whole, 10, 0).unwrap();
    assert!(
        small_x.max_gain() <= 1.0 + 1e-9,
        "x=c+1 breached at recommended d={d}: {}",
        small_x.max_gain()
    );
    assert!(
        all_keys.max_gain() <= 1.02,
        "x=m breached at recommended d={d}: {}",
        all_keys.max_gain()
    );
}

#[test]
fn capacity_headroom_verdict_matches_des_saturation() {
    use secure_cache_provision::sim::des::{run_des, DesConfig};
    // The provisioner says what per-node rate survives the worst case;
    // give the M/M/1 farm less and it saturates, give it that much (plus
    // stochastic head-room) and it doesn't.
    let prov = Provisioner::default();
    let params = SystemParams::new(20, 3, 5, 1_000, 1e3).unwrap();
    let needed = prov.report(&params).required_node_capacity;

    let mk = |service_rate: f64| DesConfig {
        sim: SimConfig::builder()
            .nodes(20)
            .cache_capacity(5)
            .items(1_000)
            .rate(1e3)
            .seed(4)
            .build()
            .unwrap(),
        duration: 30.0,
        service_rate,
    };
    let starved = run_des(&mk(needed * 0.5)).unwrap();
    assert!(
        starved.is_saturated(),
        "half the needed capacity must choke"
    );
    let provisioned = run_des(&mk(needed * 1.5)).unwrap();
    assert!(
        !provisioned.is_saturated(),
        "1.5x the bound should ride out the attack: {provisioned:?}"
    );
}
