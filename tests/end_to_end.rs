//! End-to-end integration: theory → adversary → simulated cluster.
//!
//! These tests drive the full pipeline the paper describes: a provisioner
//! sizes the cache, an adversary plans its best attack, and the simulated
//! cluster (cache + partitioner + replica selection) confirms the verdict.

use secure_cache_provision::core::adversary::{AdversaryStrategy, ReplicatedClusterAdversary};
use secure_cache_provision::core::bounds::KParam;
use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::runner::repeat_rate_simulation;

const NODES: usize = 100;
const REPLICATION: usize = 3;
const ITEMS: u64 = 100_000;
const RATE: f64 = 1e5;
const RUNS: usize = 12;

fn sim_config(cache: usize, pattern: AccessPattern, seed: u64) -> SimConfig {
    SimConfig::builder()
        .nodes(NODES)
        .replication(REPLICATION)
        .cache_capacity(cache)
        .items(ITEMS)
        .rate(RATE)
        .pattern(pattern)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

fn simulated_best_gain(cache: usize, seed: u64) -> f64 {
    let params = SystemParams::new(NODES, REPLICATION, cache, ITEMS, RATE).unwrap();
    let plan = ReplicatedClusterAdversary::new().plan(&params).unwrap();
    let cfg = sim_config(cache, plan.pattern, seed);
    let (_, agg) = repeat_rate_simulation(&cfg, RUNS, 0).unwrap();
    agg.max_gain()
}

#[test]
fn under_provisioned_cluster_is_breached() {
    // c far below c* (= 121 at fitted k): the planned attack must land.
    let gain = simulated_best_gain(20, 1);
    assert!(gain > 2.0, "expected a decisive breach, got {gain}");
}

#[test]
fn provisioned_cluster_holds() {
    // c comfortably above c*: even the best response stays ineffective.
    let gain = simulated_best_gain(400, 2);
    assert!(gain <= 1.0, "provisioned cluster breached with gain {gain}");
}

#[test]
fn provisioner_verdict_matches_simulation_on_both_sides() {
    let prov = Provisioner::default();
    let c_star = prov.min_cache_size(NODES, REPLICATION);
    // Stay clearly away from the critical point where noise decides.
    let below = c_star / 4;
    let above = c_star * 3;
    assert!(!prov.is_protected(&SystemParams::new(NODES, REPLICATION, below, ITEMS, RATE).unwrap()));
    assert!(prov.is_protected(&SystemParams::new(NODES, REPLICATION, above, ITEMS, RATE).unwrap()));
    assert!(simulated_best_gain(below, 3) > 1.0);
    assert!(simulated_best_gain(above, 4) <= 1.0);
}

#[test]
fn predicted_gain_upper_bounds_simulated_gain() {
    for cache in [20usize, 60, 150, 400] {
        let params = SystemParams::new(NODES, REPLICATION, cache, ITEMS, RATE).unwrap();
        let plan = ReplicatedClusterAdversary::with_k(KParam::theory())
            .plan(&params)
            .unwrap();
        let cfg = sim_config(cache, plan.pattern.clone(), 5);
        let (_, agg) = repeat_rate_simulation(&cfg, RUNS, 0).unwrap();
        assert!(
            plan.predicted_gain.value() >= agg.max_gain() - 0.05,
            "c={cache}: theory {} below simulation {}",
            plan.predicted_gain,
            agg.max_gain()
        );
    }
}

#[test]
fn cache_size_independent_of_item_count() {
    // The headline scalability claim: the same cache protects the same
    // cluster regardless of how many items the service stores.
    let prov = Provisioner::default();
    let c_star = prov.min_cache_size(NODES, REPLICATION);
    for items in [10_000u64, 100_000, 1_000_000] {
        let params = SystemParams::new(NODES, REPLICATION, c_star, items, RATE).unwrap();
        assert!(prov.is_protected(&params), "m={items} changed the verdict");
        let plan = ReplicatedClusterAdversary::new().plan(&params).unwrap();
        let cfg = SimConfig::builder()
            .nodes(NODES)
            .replication(REPLICATION)
            .cache_capacity(c_star)
            .items(items)
            .rate(RATE)
            .pattern(plan.pattern)
            .seed(6)
            .build()
            .expect("test config is valid");
        let (_, agg) = repeat_rate_simulation(&cfg, RUNS, 0).unwrap();
        assert!(
            agg.max_gain() <= 1.02,
            "m={items}: gain {} at c*",
            agg.max_gain()
        );
    }
}

#[test]
fn uncached_attacks_through_every_partitioner_are_blocked_by_sizing() {
    // The theorem needs randomized partitioning; all three randomized
    // schemes should enjoy the same protection at c >= c*.
    for partitioner in [
        PartitionerKind::Hash,
        PartitionerKind::Ring,
        PartitionerKind::Rendezvous,
    ] {
        let mut cfg = sim_config(400, AccessPattern::uniform_subset(401, ITEMS).unwrap(), 7);
        cfg.partitioner = partitioner;
        let (_, agg) = repeat_rate_simulation(&cfg, RUNS, 0).unwrap();
        assert!(
            agg.max_gain() <= 1.05,
            "{partitioner:?} breached at c=400: {}",
            agg.max_gain()
        );
    }
}
