//! Root-suite mirror of the `scp-analyze` gate, so a plain `cargo test`
//! from the workspace root fails on determinism/panic-safety violations
//! even when nobody runs the analyzer binary. See `crates/analyze` for
//! the rule set and README for the ratchet workflow.

use scp_analyze::analyze_workspace;
use scp_analyze::files::find_workspace_root;
use std::path::Path;

#[test]
fn static_analysis_gate() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = analyze_workspace(&root).expect("analysis runs");
    assert!(
        report.deny_clean(),
        "static-analysis violations:\n{}",
        report.render_human(true)
    );
    assert!(
        report.baseline_in_sync(),
        "analyze-baseline.json out of sync; run \
         `cargo run -p scp-analyze -- --update-baseline`:\n{}",
        report.baseline_diff.join("\n")
    );
}
