//! Root-suite mirror of the `scp-analyze` gate, so a plain `cargo test`
//! from the workspace root fails on determinism/panic-safety violations
//! even when nobody runs the analyzer binary. See `crates/analyze` for
//! the rule set and README for the ratchet workflow.

use scp_analyze::analyze_workspace;
use scp_analyze::files::{find_workspace_root, SourceFile};
use scp_analyze::{analyze_sources, baseline::Baseline, surface::Surface};
use std::path::Path;

#[test]
fn static_analysis_gate() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = analyze_workspace(&root).expect("analysis runs");
    assert!(
        report.deny_clean(),
        "static-analysis violations:\n{}",
        report.render_human(true)
    );
    assert!(
        report.baseline_in_sync(),
        "analyze-baseline.json out of sync; run \
         `cargo run -p scp-analyze -- --update-baseline`:\n{}",
        report.baseline_diff.join("\n")
    );
}

#[test]
fn determinism_surface_gate() {
    // The taint-pass twin of the gate above: the committed
    // `determinism-surface.json` must match what the call graph observes,
    // and nothing may have entered it.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let surface = scp_analyze::analyze_det_surface(&root).expect("call graph builds");
    assert!(
        surface.no_regressions(),
        "pub fns entered the determinism surface:\n{}",
        surface.added.join("\n")
    );
    assert!(
        surface.in_sync(),
        "determinism-surface.json out of sync; run \
         `cargo run -p scp-analyze -- --update-baseline`:\nadded: {}\nremoved: {}",
        surface.added.join(", "),
        surface.removed.join(", ")
    );
}

#[test]
fn a_new_tainted_pub_fn_would_fail_the_deny_gate() {
    // Synthetic proof the gate has teeth: a pub fn reading a clock,
    // checked against the committed (empty) surface, is a deny-class
    // `nondet-taint` violation.
    let sources = vec![SourceFile::from_source(
        "crates/cluster/src/synthetic.rs",
        "pub fn leaky() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n",
    )];
    let analysis = analyze_sources(
        &sources,
        &Baseline::default(),
        &Surface::default(),
        &Surface::default(),
    );
    assert!(
        !analysis.report.deny_clean(),
        "a fresh tainted pub fn must fail --deny"
    );
    assert!(analysis
        .report
        .violations
        .iter()
        .any(|f| f.rule == "nondet-taint"));
    assert!(!analysis.det_surface.no_regressions());
}

#[test]
fn a_ghost_surface_entry_would_fail_the_sync_gate() {
    // The reverse direction: a committed entry no function justifies
    // (e.g. left over after a fix) is drift, which --check-baseline
    // rejects until the surface is re-locked.
    let sources = vec![SourceFile::from_source(
        "crates/cluster/src/synthetic.rs",
        "pub fn clean() -> u64 { 1 }\n",
    )];
    let mut ghost = Surface::default();
    ghost
        .functions
        .insert("crates/cluster/src/synthetic.rs::gone".to_owned());
    let analysis = analyze_sources(&sources, &Baseline::default(), &Surface::default(), &ghost);
    assert!(analysis.report.deny_clean(), "removals alone are not deny");
    assert!(!analysis.det_surface.in_sync(), "drift must fail sync");
    assert_eq!(analysis.det_surface.removed.len(), 1);
}
