//! Property tests for the online admission tentpole: over 500 seeded
//! cases each, W-TinyLFU converges to the true top-`c` resident set on a
//! stationary Zipf stream, and the rotating attacker — re-drawing its
//! working set faster than the sketch's halving window adapts — destroys
//! exactly that convergence.
//!
//! Keys are pattern ranks used verbatim (no permutation): rank `k` is the
//! `k`-th most popular key, so the true top-`c` set is `0..c` and the
//! oracle's stationary hit ratio on an equal-rate `x`-subset is `c/x`.

use secure_cache_provision::cache::tinylfu::TinyLfuCache;
use secure_cache_provision::cache::Cache;
use secure_cache_provision::workload::rng::mix;
use secure_cache_provision::workload::AccessPattern;

const CASES: u64 = 500;
const DRAWS: u64 = 4_000;

/// Drives `draws` samples of `pattern` through a fresh TinyLFU cache of
/// size `c` and returns `(cache, hits)`.
fn drive(pattern: &AccessPattern, c: usize, seed: u64, draws: u64) -> (TinyLfuCache<u64>, u64) {
    let mut sampler = pattern.sampler(seed).expect("pattern samples");
    let mut cache = TinyLfuCache::new(c);
    let mut hits = 0u64;
    for _ in 0..draws {
        if cache.request(sampler.sample()).is_hit() {
            hits += 1;
        }
    }
    (cache, hits)
}

#[test]
fn online_tinylfu_converges_to_top_c_on_stationary_zipf() {
    let mut overlap_sum = 0.0f64;
    for case in 0..CASES {
        let seed = mix(&[0x0AD1, case]);
        let c = 4 + (case % 13) as usize; // 4..=16
        let m = 500 + (seed % 1_500); // 500..2000 items
        let alpha = 1.0 + 0.1 * (case % 5) as f64; // 1.0..1.4
        let pattern = AccessPattern::zipf(alpha, m).expect("valid zipf");
        let (cache, _) = drive(&pattern, c, seed, DRAWS);

        // Resident-set overlap with the true top-c (ranks 0..c).
        let resident = (0..c as u64).filter(|k| cache.contains(k)).count();
        overlap_sum += resident as f64 / c as f64;
        // Loose per-case floor: the stream is random, but the sketch
        // must capture at least a quarter of the head in every case.
        assert!(
            resident >= c.div_ceil(4),
            "case {case}: only {resident}/{c} of the Zipf head resident (alpha {alpha}, m {m})"
        );
    }
    // Tight aggregate: on average the resident set is mostly the head.
    let mean_overlap = overlap_sum / CASES as f64;
    assert!(
        mean_overlap > 0.65,
        "mean top-c overlap {mean_overlap} over {CASES} cases"
    );
}

#[test]
fn rotating_attacker_degrades_hits_below_the_static_floor() {
    let mut static_sum = 0.0f64;
    let mut rotating_sum = 0.0f64;
    for case in 0..CASES {
        let seed = mix(&[0x0AD2, case]);
        let c = 4 + (case % 13); // 4..=16
        let x = 4 * c;
        let m = 40 * x; // plenty of fresh keys to rotate into
        let stationary = AccessPattern::uniform_subset(x, m).expect("valid subset");
        // Re-draw the working set every x/2 queries: each key is seen
        // O(1) times per period, far below the sketch's sample window.
        let rotating = AccessPattern::rotating_subset(x, m, x / 2).expect("valid rotation");

        let (_, static_hits) = drive(&stationary, c as usize, seed, DRAWS);
        let (_, rotating_hits) = drive(&rotating, c as usize, seed, DRAWS);
        let static_hit = static_hits as f64 / DRAWS as f64;
        let rotating_hit = rotating_hits as f64 / DRAWS as f64;
        static_sum += static_hit;
        rotating_sum += rotating_hit;

        let oracle = c as f64 / x as f64; // stationary oracle floor c/x
        assert!(
            static_hit > 0.5 * oracle,
            "case {case}: static hit {static_hit} far below oracle {oracle} (c {c}, x {x})"
        );
        // Loose per-case bound; the aggregate below is the sharp claim.
        assert!(
            rotating_hit < static_hit + 0.05,
            "case {case}: rotation did not degrade hits ({rotating_hit} vs {static_hit})"
        );
    }
    let static_mean = static_sum / CASES as f64;
    let rotating_mean = rotating_sum / CASES as f64;
    assert!(
        rotating_mean < 0.5 * static_mean,
        "rotation should at least halve the hit ratio: {rotating_mean} vs static {static_mean}"
    );
}
