//! Tier-1 serve-path guarantees: the live engine agrees with the
//! simulator, sheds exactly when a shard is driven past its capacity, and
//! never loses an accounted request on shutdown.

use secure_cache_provision::prelude::*;

/// The paper's Section IV baseline under the optimal x = c + 1 attack,
/// shrunk only in query count knobs that don't change the measured gain.
fn paper_attack_sim() -> SimConfig {
    SimConfig::builder()
        .cache_capacity(200) // x = 201 attack via builder default
        .seed(20130708)
        .build()
        .expect("paper baseline is valid")
}

#[test]
fn deterministic_serve_gain_matches_rate_engine_on_paper_baseline() {
    // The serving engine replays the same admission decisions the
    // simulator models; over enough queries its measured gain must land
    // within 5% of the rate engine's exact computation.
    let sim = paper_attack_sim();
    let expected = run_rate_simulation(&sim)
        .expect("rate simulation runs")
        .gain()
        .value();

    let mut cfg = ServeConfig::new(sim);
    cfg.total_queries = 1_000_000;
    let report = run_deterministic(&cfg).expect("deterministic serve runs");
    assert!(report.is_conserved(), "request accounting must balance");
    assert!(report.is_drained(), "all enqueued work must be processed");

    let measured = report.gain();
    let rel = (measured - expected).abs() / expected;
    assert!(
        rel <= 0.05,
        "serve gain {measured:.4} vs rate-engine gain {expected:.4} (rel {rel:.4})"
    );
}

/// A small cluster the optimal attack can overdrive: with least-loaded
/// selection the single uncached key pins to one replica, which then
/// receives up to R/x while its capacity is only h·R/n — shedding is
/// guaranteed whenever n > h·x·d.
fn overdrive_sim() -> SimConfig {
    SimConfig::builder()
        .nodes(50)
        .cache_capacity(10) // x = 11 attack
        .items(100_000)
        .rate(1e4)
        .seed(7)
        .build()
        .expect("overdrive config is valid")
}

#[test]
fn shedding_engages_iff_a_shard_is_driven_past_its_capacity() {
    // Tight headroom (1.2): r_i = 1.2·R/50 < R/11 → the hot shard must
    // shed; generous headroom (1000): r_i far above any shard's arrival
    // rate → nothing may shed. Both runs stay fully accounted.
    let mut tight = ServeConfig::new(overdrive_sim());
    tight.total_queries = 200_000;
    tight.capacity_headroom = 1.2;
    let report = run_deterministic(&tight).expect("tight run completes");
    assert!(report.is_conserved() && report.is_drained());
    assert!(
        report.shed_capacity() > 0,
        "overdriven shard must shed, not queue without bound"
    );

    let mut ample = tight.clone();
    ample.capacity_headroom = 1000.0;
    let report = run_deterministic(&ample).expect("ample run completes");
    assert!(report.is_conserved() && report.is_drained());
    assert_eq!(
        report.shed_capacity(),
        0,
        "no shard exceeds r_i, so nothing may be capacity-shed"
    );
}

#[test]
fn threaded_shutdown_drains_queues_without_losing_accounted_requests() {
    // The full threaded pipeline: client threads, admission, SPSC fan-out
    // and shard workers. On quota-driven shutdown every queue must drain
    // and the exact-integer conservation law must hold, with per-shard
    // work checksums proving nothing was dropped or duplicated in flight.
    let mut cfg = ServeConfig::new(overdrive_sim());
    cfg.total_queries = 120_000;
    cfg.clients = 3;
    let report = run_threaded(&cfg).expect("threaded run completes");

    assert_eq!(report.submitted, 120_000, "quota must be exact");
    assert!(
        report.is_conserved(),
        "submitted != hits + enqueued + shed + unserved"
    );
    assert!(
        report.is_drained(),
        "a queue was not drained or a checksum diverged on shutdown"
    );
    for (i, shard) in report.shards.iter().enumerate() {
        assert_eq!(
            shard.processed, shard.enqueued,
            "shard {i} lost work on shutdown"
        );
        assert_eq!(
            shard.checksum, shard.expected_checksum,
            "shard {i} processed different work than was enqueued"
        );
    }
}

#[test]
fn serve_report_serializes_through_the_facade_json() {
    // The report must round-trip through the workspace's own JSON value
    // so journals and CI artifacts can consume it.
    let mut cfg = ServeConfig::new(overdrive_sim());
    cfg.total_queries = 20_000;
    let report = run_deterministic(&cfg).expect("run completes");
    let text = report.to_json().to_pretty_string();
    let back = Json::parse(&text).expect("report JSON parses");
    assert_eq!(
        back.get("submitted").and_then(Json::as_u64),
        Some(report.submitted)
    );
    assert_eq!(back.get("conserved").and_then(Json::as_bool), Some(true));
}
