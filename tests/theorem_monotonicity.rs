//! Empirical validation of Theorem 1: shifting query mass toward the
//! Eq. (4) canonical shape never decreases the expected maximum load.

use secure_cache_provision::core::theorem::{canonicalize, shift_once};
use secure_cache_provision::prelude::*;
use secure_cache_provision::sim::runner::repeat_rate_simulation;
use secure_cache_provision::workload::zipf::zipf_probs;
use secure_cache_provision::workload::Pmf;

const NODES: usize = 40;
const CACHE: usize = 8;
const RUNS: usize = 40;

fn mean_max_gain(pmf: Pmf, seed: u64) -> f64 {
    let cfg = SimConfig::builder()
        .nodes(NODES)
        .cache_capacity(CACHE)
        .items(pmf.len() as u64)
        .rate(1e4)
        .pattern(AccessPattern::explicit(pmf))
        .seed(seed)
        .build()
        .unwrap();
    let (_, agg) = repeat_rate_simulation(&cfg, RUNS, 0).unwrap();
    agg.mean_gain()
}

#[test]
fn canonical_attack_dominates_the_zipf_it_came_from() {
    // Start from an organic Zipf distribution over 400 keys and apply the
    // full Theorem-1 iteration. The canonical head/tail shape must load
    // the fullest node at least as much, in expectation over partitions.
    let probs = zipf_probs(1.1, 400).unwrap();
    let original = Pmf::new(probs).unwrap();
    let canonical = canonicalize(&original, CACHE).unwrap();
    assert!(canonical.shifts > 0, "zipf is not already canonical");

    let before = mean_max_gain(original, 11);
    let after = mean_max_gain(canonical.pmf, 11);
    assert!(
        after >= before * 0.98,
        "canonicalization lowered expected max load: {before} -> {after}"
    );
    // And meaningfully so for a skew-1.1 start (mass concentrates).
    assert!(
        after > before,
        "canonical shape should strictly dominate: {before} -> {after}"
    );
}

#[test]
fn single_shift_step_does_not_hurt_the_adversary() {
    // One elementary Theorem-1 shift (fill key i up to h from the tail
    // key j) on a hand-rolled distribution.
    let mut probs = vec![0.0f64; 60];
    // 8 cached keys at h = 0.05, 20 uncached keys descending.
    let h = 0.05;
    for p in probs.iter_mut().take(CACHE) {
        *p = h;
    }
    let mut rest = 1.0 - h * CACHE as f64;
    for slot in probs.iter_mut().take(28).skip(CACHE) {
        let share = (rest * 0.2).min(h);
        *slot = share;
        rest -= share;
    }
    probs[28] = rest;
    let original = Pmf::new(probs.clone()).unwrap().to_sorted_descending();

    let mut shifted = original.as_slice().to_vec();
    // Shift from the last positive key onto the first below-h uncached key.
    let i = (CACHE..shifted.len())
        .find(|&i| shifted[i] < h - 1e-12)
        .unwrap();
    let j = (0..shifted.len())
        .rev()
        .find(|&j| shifted[j] > 0.0)
        .unwrap();
    assert!(i < j);
    shift_once(&mut shifted, h, i, j).unwrap();
    let shifted = Pmf::new(shifted).unwrap();

    let before = mean_max_gain(original, 13);
    let after = mean_max_gain(shifted, 13);
    assert!(
        after >= before * 0.97,
        "a single shift lowered expected max load: {before} -> {after}"
    );
}
